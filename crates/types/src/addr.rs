//! Byte and cache-line address newtypes.
//!
//! The simulator works with two address granularities: byte addresses
//! ([`Addr`], as produced by the trace generator) and cache-line addresses
//! ([`LineAddr`], as consumed by caches and prefetchers). Keeping them as
//! distinct newtypes prevents a whole class of off-by-a-shift bugs.

use std::fmt;

use crate::error::ConfigError;

/// A byte address in the simulated (virtual = physical) address space.
///
/// # Examples
///
/// ```
/// use ipsim_types::addr::{Addr, LineSize};
///
/// let a = Addr(0x1200);
/// assert_eq!(a.offset(4), Addr(0x1204));
/// assert_eq!(a.line(LineSize::new(64).unwrap()), a.offset(16).line(LineSize::new(64).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line this byte address falls in, for a given line size.
    #[inline]
    pub fn line(self, line_size: LineSize) -> LineAddr {
        LineAddr(self.0 >> line_size.shift())
    }

    /// This address plus `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on address-space wrap-around.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Byte distance to `other`, as a signed quantity (`other - self`).
    #[inline]
    pub fn distance_to(self, other: Addr) -> i64 {
        other.0.wrapping_sub(self.0) as i64
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address: a byte address divided by the line size.
///
/// Line addresses support the small amount of arithmetic the prefetchers
/// need: "next line" ([`LineAddr::next`]), "N lines ahead"
/// ([`LineAddr::ahead`]) and line-distance comparison.
///
/// # Examples
///
/// ```
/// use ipsim_types::addr::LineAddr;
///
/// let l = LineAddr(100);
/// assert_eq!(l.next(), LineAddr(101));
/// assert_eq!(l.ahead(4), LineAddr(104));
/// assert!(l.next().is_sequential_after(l));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The immediately following line.
    #[inline]
    pub fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// The line `n` lines ahead of this one.
    #[inline]
    pub fn ahead(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }

    /// `true` when `self` is exactly the line after `prev`.
    #[inline]
    pub fn is_sequential_after(self, prev: LineAddr) -> bool {
        self.0 == prev.0 + 1
    }

    /// Line distance from `prev` to `self` (`self - prev`), signed.
    #[inline]
    pub fn distance_from(self, prev: LineAddr) -> i64 {
        self.0.wrapping_sub(prev.0) as i64
    }

    /// First byte address of this line for a given line size.
    #[inline]
    pub fn base(self, line_size: LineSize) -> Addr {
        Addr(self.0 << line_size.shift())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A validated, power-of-two cache line size in bytes.
///
/// # Examples
///
/// ```
/// use ipsim_types::addr::LineSize;
///
/// let ls = LineSize::new(64).unwrap();
/// assert_eq!(ls.bytes(), 64);
/// assert_eq!(ls.shift(), 6);
/// assert!(LineSize::new(48).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineSize {
    shift: u32,
}

impl LineSize {
    /// Creates a line size of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] unless `bytes` is a power of
    /// two of at least 4 (one instruction).
    pub fn new(bytes: u64) -> Result<LineSize, ConfigError> {
        if bytes < 4 || !bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: bytes,
            });
        }
        Ok(LineSize {
            shift: bytes.trailing_zeros(),
        })
    }

    /// The line size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        1 << self.shift
    }

    /// log2 of the line size.
    #[inline]
    pub fn shift(self) -> u32 {
        self.shift
    }
}

impl Default for LineSize {
    /// The paper's default 64-byte line.
    fn default() -> Self {
        LineSize { shift: 6 }
    }
}

impl fmt::Display for LineSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_line_uses_shift() {
        let ls = LineSize::new(64).unwrap();
        assert_eq!(Addr(0).line(ls), LineAddr(0));
        assert_eq!(Addr(63).line(ls), LineAddr(0));
        assert_eq!(Addr(64).line(ls), LineAddr(1));
        assert_eq!(Addr(0x1000).line(ls), LineAddr(0x40));
    }

    #[test]
    fn line_size_rejects_non_power_of_two() {
        assert!(LineSize::new(0).is_err());
        assert!(LineSize::new(3).is_err());
        assert!(LineSize::new(96).is_err());
        assert!(LineSize::new(2).is_err());
        for s in [4u64, 32, 64, 128, 256] {
            assert_eq!(LineSize::new(s).unwrap().bytes(), s);
        }
    }

    #[test]
    fn line_arithmetic() {
        let l = LineAddr(10);
        assert_eq!(l.next(), LineAddr(11));
        assert_eq!(l.ahead(0), l);
        assert_eq!(l.ahead(5), LineAddr(15));
        assert!(LineAddr(11).is_sequential_after(l));
        assert!(!LineAddr(12).is_sequential_after(l));
        assert!(!l.is_sequential_after(l));
        assert_eq!(LineAddr(7).distance_from(LineAddr(10)), -3);
    }

    #[test]
    fn line_base_round_trips() {
        let ls = LineSize::new(128).unwrap();
        let l = LineAddr(42);
        assert_eq!(l.base(ls).line(ls), l);
        assert_eq!(l.base(ls), Addr(42 * 128));
    }

    #[test]
    fn addr_distance_is_signed() {
        assert_eq!(Addr(100).distance_to(Addr(40)), -60);
        assert_eq!(Addr(40).distance_to(Addr(100)), 60);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Addr(0x10)), "0x10");
        assert_eq!(format!("{}", LineAddr(0x10)), "L0x10");
        assert_eq!(format!("{}", LineSize::default()), "64B");
    }
}
