//! Synthetic commercial-workload generation for the `ipsim` simulator.
//!
//! The paper traces four proprietary commercial applications (an OLTP
//! database, TPC-W, SPECjAppServer2002, SPECweb99) on real SPARC hardware.
//! Those traces are not available, so this crate synthesises workloads with
//! the *statistical structure* the paper identifies as driving its results:
//!
//! * multi-megabyte instruction footprints that overwhelm a 32 KB L1I and
//!   pressure a 2 MB L2,
//! * small functions and small basic blocks, so control transfers are
//!   frequent,
//! * a mix of conditional branches (mostly taken-forward), unconditional
//!   branches, direct calls, indirect jumps and returns matching the miss
//!   breakdowns of Figure 3,
//! * discontinuities that are mostly *single-target* at line granularity
//!   (direct call sites dominate), which is the property the discontinuity
//!   prefetcher exploits,
//! * data reference streams with a hot/warm/cold locality hierarchy, so L2
//!   pollution by instruction prefetches measurably hurts data misses.
//!
//! The pipeline is:
//!
//! 1. [`WorkloadProfile`] — a named parameter set ([`Workload::Db`],
//!    [`Workload::TpcW`], [`Workload::JApp`], [`Workload::Web`]),
//! 2. [`ProgramBuilder`] — deterministically synthesises a static
//!    [`Program`] (functions, basic blocks, branch/call structure, layout),
//! 3. [`TraceWalker`] — walks the program with a call stack and a seeded
//!    RNG, yielding a self-consistent [`TraceOp`](ipsim_types::TraceOp)
//!    stream.
//!
//! # Examples
//!
//! ```
//! use ipsim_trace::{Workload, TraceWalker};
//!
//! let program = Workload::Web.build_program(42);
//! let mut walker = TraceWalker::new(&program, Workload::Web.profile(), 0, 7);
//! let ops: Vec<_> = (0..1000).map(|_| walker.next_op()).collect();
//! assert_eq!(ops.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod data;
mod profile;
mod program;
mod walker;
mod zipf;

pub use builder::ProgramBuilder;
pub use data::DataGen;
pub use profile::{Workload, WorkloadProfile};
pub use program::{Block, FuncId, Function, Program, Terminator};
pub use walker::TraceWalker;
pub use zipf::ZipfSampler;
