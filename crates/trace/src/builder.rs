//! Deterministic synthesis of a static [`Program`] from a
//! [`WorkloadProfile`].

use ipsim_types::instr::INSTR_BYTES;
use ipsim_types::{Addr, Rng64};

use crate::profile::WorkloadProfile;
use crate::program::TierSampler;
use crate::program::{Block, FuncId, Function, Program, Terminator};

/// Base address of synthesised code (keeps PC 0 invalid).
const CODE_BASE: u64 = 0x1_0000;
/// Upper bound on blocks per function.
const MAX_BLOCKS: u64 = 63;
/// Upper bound on instructions per block.
const MAX_BLOCK_INSTRS: u64 = 31;
/// First block index at which call sites may appear.
const MIN_CALL_BLOCK: u32 = 2;

/// Builds a synthetic static program from a profile and a seed.
///
/// The same `(profile, seed)` pair always produces an identical program, so
/// several simulated cores can share "the same binary" and experiments are
/// reproducible.
///
/// # Examples
///
/// ```
/// use ipsim_trace::{ProgramBuilder, Workload};
///
/// let prog = ProgramBuilder::new(Workload::Web.profile(), 1).build();
/// assert!(prog.code_bytes() > 500_000);
/// prog.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    profile: WorkloadProfile,
    seed: u64,
}

impl ProgramBuilder {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if the profile's probabilities are inconsistent (see
    /// [`WorkloadProfile::assert_valid`]).
    pub fn new(profile: WorkloadProfile, seed: u64) -> ProgramBuilder {
        profile.assert_valid();
        ProgramBuilder { profile, seed }
    }

    /// Synthesises the program.
    pub fn build(&self) -> Program {
        let p = &self.profile;
        let mut rng = Rng64::new(self.seed);
        let n = p.n_functions;

        // Popularity permutation: identity = hot functions first in the
        // address space (ideal link-time layout); each slot is perturbed
        // with probability (1 - layout_quality).
        let mut by_rank: Vec<FuncId> = (0..n).map(FuncId).collect();
        for r in 0..n as usize {
            if !rng.chance(p.layout_quality) {
                let other = rng.range(n as u64) as usize;
                by_rank.swap(r, other);
            }
        }

        let call_targets = TierSampler {
            hot: p.code_hot_fns,
            warm: p.code_warm_fns,
            total: n,
            hot_prob: p.call_hot_prob,
            warm_prob: p.call_warm_prob,
        };
        let dispatch = TierSampler {
            hot: p.code_hot_fns,
            warm: p.code_warm_fns,
            total: n,
            hot_prob: p.dispatch_hot_prob,
            warm_prob: p.dispatch_warm_prob,
        };
        let p_blocks = 1.0 / (1.0 + p.blocks_per_fn_mean);
        let p_instrs = 1.0 / (1.0 + p.instrs_per_block_mean);

        let code_start = Addr(CODE_BASE);
        let mut cursor = code_start;
        let mut functions = Vec::with_capacity((n + p.n_trap_handlers) as usize);

        for _ in 0..n {
            let nb = 1 + rng.geometric(p_blocks, MAX_BLOCKS) as u32;
            let mut blocks = Vec::with_capacity(nb as usize);
            for b in 0..nb {
                let ni = 1 + rng.geometric(p_instrs, MAX_BLOCK_INSTRS) as u32;
                let terminator = if b == nb - 1 {
                    Terminator::Return
                } else {
                    self.draw_terminator(&mut rng, b, nb, &by_rank, &call_targets)
                };
                blocks.push(Block {
                    start: cursor,
                    n_instrs: ni,
                    terminator,
                });
                cursor = cursor.offset(ni as u64 * INSTR_BYTES);
            }
            functions.push(Function { blocks });
        }

        // Trap handlers: short straight-line functions at the top of the
        // code segment (far from regular code, like kernel trap vectors).
        for _ in 0..p.n_trap_handlers {
            let nb = 2 + rng.range(3) as u32;
            let mut blocks = Vec::with_capacity(nb as usize);
            for b in 0..nb {
                let ni = 2 + rng.range(6) as u32;
                let terminator = if b == nb - 1 {
                    Terminator::Return
                } else {
                    Terminator::FallThrough
                };
                blocks.push(Block {
                    start: cursor,
                    n_instrs: ni,
                    terminator,
                });
                cursor = cursor.offset(ni as u64 * INSTR_BYTES);
            }
            functions.push(Function { blocks });
        }

        let program = Program::assemble(
            functions,
            code_start,
            cursor.0 - code_start.0,
            n,
            by_rank,
            dispatch,
        );
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    /// Chooses the terminator for non-final block `b` of `nb`.
    fn draw_terminator(
        &self,
        rng: &mut Rng64,
        b: u32,
        nb: u32,
        by_rank: &[FuncId],
        popularity: &TierSampler,
    ) -> Terminator {
        let p = &self.profile;
        let r = rng.f64();
        let mut acc = p.cond_branch_frac;
        if r < acc {
            return self.draw_cond_branch(rng, b, nb);
        }
        acc += p.uncond_branch_frac;
        if r < acc {
            // Unconditional branches go forward (a `goto` past some
            // blocks, often to a merge point or cleanup code well ahead).
            let skip = 2 + rng.geometric(1.0 / (1.0 + p.fwd_skip_mean), 16);
            return Terminator::UncondBranch {
                target: (b + skip as u32).min(nb - 1),
            };
        }
        acc += p.call_frac;
        if r < acc {
            // Call sites do not appear in a function's first blocks
            // (prologue and setup code precede the first call in real
            // functions). This also gives a prefetcher probing at function
            // entry enough lead time to cover an L2-resident callee.
            if b < MIN_CALL_BLOCK {
                return Terminator::FallThrough;
            }
            return Terminator::Call {
                callee: by_rank[popularity.sample(rng) as usize],
            };
        }
        acc += p.indirect_call_frac;
        if r < acc && b < MIN_CALL_BLOCK {
            return Terminator::FallThrough;
        }
        if r < acc {
            let n_targets = 2 + rng.range(3) as usize;
            let callees = (0..n_targets)
                .map(|_| {
                    (
                        by_rank[popularity.sample(rng) as usize],
                        0.2 + rng.f64() as f32 * 0.8,
                    )
                })
                .collect();
            return Terminator::IndirectCall { callees };
        }
        acc += p.early_return_frac;
        if r < acc {
            return Terminator::Return;
        }
        Terminator::FallThrough
    }

    fn draw_cond_branch(&self, rng: &mut Rng64, b: u32, nb: u32) -> Terminator {
        let p = &self.profile;
        if rng.chance(p.cond_fwd_frac) {
            if rng.chance(p.rare_branch_frac) {
                // A rarely-taken guard (error/slow path): far-away cold
                // target, taken only occasionally — when it fires, the
                // target line has almost always left the caches. These are
                // the taken-forward branch misses of the paper's Figure 3.
                let skip = 2 + rng.geometric(1.0 / (1.0 + p.fwd_skip_mean * 2.0), 24);
                return Terminator::CondBranch {
                    target: (b + skip as u32).min(nb - 1),
                    taken_prob: (0.05 + rng.f64() * 0.17) as f32,
                };
            }
            let skip = 1 + rng.geometric(1.0 / (1.0 + (p.fwd_skip_mean - 1.0).max(0.0)), 12);
            Terminator::CondBranch {
                target: (b + skip as u32).min(nb - 1),
                taken_prob: jitter(rng, p.fwd_taken_prob),
            }
        } else {
            let span = 1 + rng.geometric(1.0 / (1.0 + (p.bwd_span_mean - 1.0).max(0.0)), 12);
            // Loop-continuation probability is capped: nested loops multiply
            // expected trip counts, and uncapped jitter produces functions
            // that trap the walker for millions of instructions.
            Terminator::CondBranch {
                target: b.saturating_sub(span as u32),
                taken_prob: jitter(rng, p.bwd_taken_prob).min(0.72),
            }
        }
    }
}

/// Adds ±0.15 of per-site variation to a mean probability, clamped to
/// (0.02, 0.98) so no branch is perfectly biased.
fn jitter(rng: &mut Rng64, mean: f64) -> f32 {
    let v = mean + (rng.f64() - 0.5) * 0.3;
    v.clamp(0.02, 0.98) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;

    #[test]
    fn build_is_deterministic() {
        let a = ProgramBuilder::new(Workload::Db.profile(), 9).build();
        let b = ProgramBuilder::new(Workload::Db.profile(), 9).build();
        assert_eq!(a.code_bytes(), b.code_bytes());
        assert_eq!(a.n_functions(), b.n_functions());
        // Spot-check structural equality on a few functions.
        for id in [0u32, 100, 5000] {
            assert_eq!(a.function(FuncId(id)), b.function(FuncId(id)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramBuilder::new(Workload::Web.profile(), 1).build();
        let b = ProgramBuilder::new(Workload::Web.profile(), 2).build();
        assert_ne!(a.code_bytes(), b.code_bytes());
    }

    #[test]
    fn all_presets_validate() {
        for w in Workload::ALL {
            let prog = w.build_program(3);
            prog.validate().unwrap();
            assert_eq!(
                prog.n_functions(),
                w.profile().n_functions + w.profile().n_trap_handlers
            );
        }
    }

    #[test]
    fn code_footprints_are_multi_megabyte() {
        for w in Workload::ALL {
            let prog = w.build_program(4);
            assert!(
                prog.code_bytes() > 1 << 20,
                "{} code {} too small",
                w.name(),
                prog.code_bytes()
            );
        }
        let japp = Workload::JApp.build_program(4);
        let web = Workload::Web.build_program(4);
        assert!(japp.code_bytes() > web.code_bytes());
    }

    #[test]
    fn mean_block_and_function_sizes_track_profile() {
        let prof = Workload::Db.profile();
        let prog = ProgramBuilder::new(prof.clone(), 5).build();
        let total_blocks: u64 = (0..prog.n_regular())
            .map(|f| prog.function(FuncId(f)).blocks.len() as u64)
            .sum();
        let total_instrs: u64 = (0..prog.n_regular())
            .map(|f| prog.function(FuncId(f)).n_instrs() as u64)
            .sum();
        let mean_blocks = total_blocks as f64 / prog.n_regular() as f64;
        let mean_instrs = total_instrs as f64 / total_blocks as f64;
        assert!(
            (mean_blocks - (1.0 + prof.blocks_per_fn_mean)).abs() < 0.8,
            "mean blocks {mean_blocks}"
        );
        assert!(
            (mean_instrs - (1.0 + prof.instrs_per_block_mean)).abs() < 0.6,
            "mean instrs {mean_instrs}"
        );
    }

    #[test]
    fn trap_handlers_are_straight_line() {
        let prog = Workload::Web.build_program(6);
        for f in prog.n_regular()..prog.n_functions() {
            for (i, b) in prog.function(FuncId(f)).blocks.iter().enumerate() {
                let last = i == prog.function(FuncId(f)).blocks.len() - 1;
                if last {
                    assert_eq!(b.terminator, Terminator::Return);
                } else {
                    assert_eq!(b.terminator, Terminator::FallThrough);
                }
            }
        }
    }
}
