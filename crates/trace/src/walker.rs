//! The trace walker: executes a static [`Program`] stochastically, emitting
//! a self-consistent dynamic instruction stream.

use ipsim_types::instr::{CtiClass, OpKind, TraceOp};
use ipsim_types::Rng64;

use crate::data::DataGen;
use crate::profile::WorkloadProfile;
use crate::program::{FuncId, Program, WalkKind};

/// A position within the program: function, block, instruction-in-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pos {
    func: u32,
    block: u32,
    instr: u32,
}

/// Walks a [`Program`], yielding one [`TraceOp`] per call.
///
/// The walker maintains a call stack (calls push their return position,
/// returns pop it) and models a transaction-processing server: whenever the
/// stack empties and the current function returns, control transfers to the
/// entry of the next transaction, sampled from the program's popularity
/// distribution. The stream is therefore infinite and *self-consistent*:
/// each op's PC follows from the previous op (`+4` or the taken target).
///
/// # Examples
///
/// ```
/// use ipsim_trace::{TraceWalker, Workload};
///
/// let prog = Workload::Db.build_program(1);
/// let mut w = TraceWalker::new(&prog, Workload::Db.profile(), 0, 99);
/// let a = w.next_op();
/// let b = w.next_op();
/// assert_eq!(b.pc, a.next_pc());
/// ```
#[derive(Debug, Clone)]
pub struct TraceWalker<'p> {
    prog: &'p Program,
    rng: Rng64,
    data: DataGen,
    stack: Vec<Pos>,
    pos: Pos,
    /// Start address and length of the block `pos` points into, cached so
    /// body instructions (the common case) need no program indexing.
    /// Maintained by [`TraceWalker::goto_pos`]; purely an access-path
    /// cache, the emitted stream is unchanged.
    cur_start: ipsim_types::Addr,
    cur_n: u32,
    trap_prob: f64,
    load_frac: f64,
    store_frac: f64,
    max_depth: usize,
    /// Trip-count cap state: the backward branch currently being iterated
    /// and how many consecutive times it has been taken.
    loop_site: Pos,
    loop_takes: u32,
    /// Remaining instruction budget of the current transaction; when it
    /// runs out, calls stop opening frames and the stack drains to the
    /// dispatch loop.
    txn_budget: i64,
    txn_len_mean: f64,
    /// The current transaction's service: a window of popularity-adjacent
    /// functions (`[service_base, service_base + service_span)` in rank
    /// space) that phase dispatches stay inside.
    service_base: u32,
    service_span: u32,
    /// Phase index within the current transaction; phases visit the
    /// service's functions in popularity/layout order (transactions
    /// execute their operator pipeline in order, and link-time layout
    /// places those functions adjacently — the reason sequential misses
    /// dominate the paper's breakdown).
    phase_cursor: u32,
}

/// Maximum consecutive takes of one backward branch before it is forced
/// not-taken. Real loops have finite trip counts; without a cap, nested
/// high-probability loop branches occasionally trap the walker inside a
/// single function for millions of instructions, collapsing the
/// instruction footprint.
const LOOP_TRIP_CAP: u32 = 24;

impl<'p> TraceWalker<'p> {
    /// Creates a walker over `prog` for simulated core `core_id`.
    ///
    /// `core_id` selects a disjoint data region (private heap); `seed`
    /// drives all dynamic decisions, so distinct seeds model distinct
    /// transaction mixes over the same binary.
    pub fn new(prog: &'p Program, profile: WorkloadProfile, core_id: u32, seed: u64) -> Self {
        let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(core_id as u64));
        let data = DataGen::new(
            core_id,
            profile.data_footprint_lines,
            profile.data_hot_lines,
            profile.data_warm_lines,
            profile.data_hot_prob,
            profile.data_warm_prob,
            rng.next_u64(),
        );
        let mut walker = TraceWalker {
            prog,
            rng,
            data,
            stack: Vec::with_capacity(profile.max_call_depth as usize + 1),
            pos: Pos {
                func: 0,
                block: 0,
                instr: 0,
            },
            cur_start: ipsim_types::Addr(0),
            cur_n: 0,
            trap_prob: profile.trap_prob,
            load_frac: profile.load_frac,
            store_frac: profile.store_frac,
            max_depth: profile.max_call_depth as usize,
            loop_site: Pos {
                func: u32::MAX,
                block: 0,
                instr: 0,
            },
            loop_takes: 0,
            txn_budget: profile.txn_len_mean.max(1.0) as i64,
            txn_len_mean: profile.txn_len_mean.max(1.0),
            service_base: 0,
            service_span: profile.service_span,
            phase_cursor: 0,
        };
        walker.start_transaction();
        let entry = walker.next_phase();
        walker.goto_pos(Pos {
            func: entry.0,
            block: 0,
            instr: 0,
        });
        walker
    }

    /// Moves to `pos` and refreshes the cached block geometry.
    #[inline]
    fn goto_pos(&mut self, pos: Pos) {
        let block = self.prog.walk_block(pos.func, pos.block);
        self.cur_start = block.start;
        self.cur_n = block.n_instrs;
        self.pos = pos;
    }

    /// Samples the next transaction's instruction budget (exponential with
    /// the profile's mean, clamped to avoid degenerate extremes).
    fn sample_txn_budget(&mut self) -> i64 {
        let u = self.rng.f64().max(1e-9);
        let len = -u.ln() * self.txn_len_mean;
        len.clamp(64.0, self.txn_len_mean * 16.0) as i64
    }

    /// Starts a new transaction: samples its service window (centred on a
    /// popularity rank drawn from the dispatch tiers) and its budget.
    fn start_transaction(&mut self) {
        self.txn_budget = self.sample_txn_budget();
        let n = self.prog.n_regular();
        let span = self.service_span.min(n);
        let center = self.prog.dispatch_rank(&mut self.rng);
        self.service_base = center.saturating_sub(span / 2).min(n - span);
        self.phase_cursor = 0;
    }

    /// The entry function for the next phase of the current transaction:
    /// the service's functions, visited in layout order (wrapping).
    fn next_phase(&mut self) -> FuncId {
        let rank = self.service_base + self.phase_cursor % self.service_span;
        self.phase_cursor = (self.phase_cursor + 1) % self.service_span;
        self.prog.function_at_rank(rank)
    }

    /// Current call-stack depth (diagnostics / tests).
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Emits the next dynamic instruction.
    pub fn next_op(&mut self) -> TraceOp {
        self.txn_budget -= 1;
        let prog = self.prog;
        let pc = self
            .cur_start
            .offset(self.pos.instr as u64 * ipsim_types::instr::INSTR_BYTES);

        if self.pos.instr + 1 < self.cur_n {
            // Body instruction (the common case — served entirely from the
            // cached block geometry): possibly a trap, else
            // load/store/other.
            if self.may_trap() && self.rng.chance(self.trap_prob) {
                return self.take_trap(pc);
            }
            let kind = self.body_kind();
            self.pos.instr += 1;
            return TraceOp { pc, kind };
        }

        // Terminator slot: one flat walk-table record holds everything the
        // dispatch needs.
        let block = *prog.walk_block(self.pos.func, self.pos.block);
        match block.kind {
            WalkKind::FallThrough => {
                let kind = self.body_kind();
                self.goto_pos(Pos {
                    func: self.pos.func,
                    block: self.pos.block + 1,
                    instr: 0,
                });
                TraceOp { pc, kind }
            }
            WalkKind::CondBranch => {
                let target = block.target;
                let mut taken = self.rng.chance(block.prob as f64);
                if target <= self.pos.block {
                    // Backward branch: enforce the trip-count cap.
                    let here = self.pos;
                    if self.loop_site == here {
                        if taken {
                            self.loop_takes += 1;
                            if self.loop_takes >= LOOP_TRIP_CAP {
                                taken = false;
                                self.loop_takes = 0;
                            }
                        } else {
                            self.loop_takes = 0;
                        }
                    } else {
                        self.loop_site = here;
                        self.loop_takes = taken as u32;
                    }
                }
                let target_addr = prog.walk_block(self.pos.func, target).start;
                let next_block = if taken { target } else { self.pos.block + 1 };
                self.goto_pos(Pos {
                    func: self.pos.func,
                    block: next_block,
                    instr: 0,
                });
                TraceOp {
                    pc,
                    kind: OpKind::Cti {
                        class: CtiClass::CondBranch,
                        taken,
                        target: target_addr,
                    },
                }
            }
            WalkKind::UncondBranch => {
                let target = block.target;
                let target_addr = prog.walk_block(self.pos.func, target).start;
                self.goto_pos(Pos {
                    func: self.pos.func,
                    block: target,
                    instr: 0,
                });
                TraceOp {
                    pc,
                    kind: OpKind::Cti {
                        class: CtiClass::UncondBranch,
                        taken: true,
                        target: target_addr,
                    },
                }
            }
            WalkKind::Call => self.enter(pc, FuncId(block.target), CtiClass::Call),
            WalkKind::IndirectCall => {
                let callee = self.pick_weighted(&prog.indirect[block.target as usize]);
                self.enter(pc, callee, CtiClass::Jump)
            }
            WalkKind::Return => {
                let (target_pos, class) = match self.stack.pop() {
                    Some(p) => (p, CtiClass::Return),
                    None => {
                        // The driver loop: while the transaction budget
                        // lasts, dispatch the next phase within the same
                        // service; afterwards, start a new transaction.
                        if self.txn_budget <= 0 {
                            self.start_transaction();
                        }
                        let f = self.next_phase();
                        (
                            Pos {
                                func: f.0,
                                block: 0,
                                instr: 0,
                            },
                            CtiClass::Jump,
                        )
                    }
                };
                self.goto_pos(target_pos);
                let target = self
                    .cur_start
                    .offset(target_pos.instr as u64 * ipsim_types::instr::INSTR_BYTES);
                TraceOp {
                    pc,
                    kind: OpKind::Cti {
                        class,
                        taken: true,
                        target,
                    },
                }
            }
        }
    }

    /// `true` when the walker is in a state where a body instruction may
    /// trap (regular code, stack has room, traps configured). Invariant
    /// across a run of body instructions — no frames open or close.
    #[inline]
    fn may_trap(&self) -> bool {
        self.pos.func < self.prog.n_regular
            && self.stack.len() < self.max_depth
            && self.trap_prob > 0.0
    }

    /// Takes a trap at `pc` (the trap chance has already been drawn):
    /// pushes the resume frame and transfers to a sampled handler.
    fn take_trap(&mut self, pc: ipsim_types::Addr) -> TraceOp {
        let handler = self.prog.trap_handler(&mut self.rng);
        self.stack.push(Pos {
            func: self.pos.func,
            block: self.pos.block,
            instr: self.pos.instr + 1,
        });
        let target = self.prog.entry_addr(handler);
        self.goto_pos(Pos {
            func: handler.0,
            block: 0,
            instr: 0,
        });
        TraceOp {
            pc,
            kind: OpKind::Cti {
                class: CtiClass::Trap,
                taken: true,
                target,
            },
        }
    }

    /// Fills `out` with the next ops of the stream — behaviourally
    /// identical to calling [`TraceWalker::next_op`] once per slot (same
    /// RNG draw sequence, same stream), but runs of body instructions are
    /// emitted from a tight loop with the per-block state (start address,
    /// trap eligibility) hoisted out.
    pub fn next_block(&mut self, out: &mut [TraceOp]) {
        let n = out.len();
        let mut i = 0;
        'refill: while i < n {
            if self.pos.instr + 1 >= self.cur_n {
                // Terminator (or single-slot block): general path.
                out[i] = self.next_op();
                i += 1;
                continue;
            }
            let may_trap = self.may_trap();
            let mut instr = self.pos.instr;
            let mut pc = self
                .cur_start
                .offset(instr as u64 * ipsim_types::instr::INSTR_BYTES);
            while i < n && instr + 1 < self.cur_n {
                self.txn_budget -= 1;
                if may_trap && self.rng.chance(self.trap_prob) {
                    self.pos.instr = instr;
                    out[i] = self.take_trap(pc);
                    i += 1;
                    continue 'refill;
                }
                out[i] = TraceOp {
                    pc,
                    kind: self.body_kind(),
                };
                i += 1;
                instr += 1;
                pc = pc.offset(ipsim_types::instr::INSTR_BYTES);
            }
            self.pos.instr = instr;
        }
    }

    /// Enters `callee` from a call-class terminator at `pc`; when the stack
    /// is at maximum depth, or the transaction budget is exhausted (the
    /// transaction is winding down), the call site degrades to a plain
    /// instruction.
    fn enter(&mut self, pc: ipsim_types::Addr, callee: FuncId, class: CtiClass) -> TraceOp {
        if self.stack.len() >= self.max_depth || self.txn_budget <= 0 {
            let kind = self.body_kind();
            self.goto_pos(Pos {
                func: self.pos.func,
                block: self.pos.block + 1,
                instr: 0,
            });
            return TraceOp { pc, kind };
        }
        self.stack.push(Pos {
            func: self.pos.func,
            block: self.pos.block + 1,
            instr: 0,
        });
        let target = self.prog.entry_addr(callee);
        self.goto_pos(Pos {
            func: callee.0,
            block: 0,
            instr: 0,
        });
        TraceOp {
            pc,
            kind: OpKind::Cti {
                class,
                taken: true,
                target,
            },
        }
    }

    fn body_kind(&mut self) -> OpKind {
        let r = self.rng.f64();
        if r < self.load_frac {
            OpKind::Load {
                addr: self.data.next_addr(),
            }
        } else if r < self.load_frac + self.store_frac {
            OpKind::Store {
                addr: self.data.next_addr(),
            }
        } else {
            OpKind::Other
        }
    }

    fn pick_weighted(&mut self, callees: &[(FuncId, f32)]) -> FuncId {
        let total: f32 = callees.iter().map(|(_, w)| *w).sum();
        let mut r = self.rng.f64() as f32 * total;
        for (c, w) in callees {
            if r < *w {
                return *c;
            }
            r -= w;
        }
        callees[callees.len() - 1].0
    }
}

impl Iterator for TraceWalker<'_> {
    type Item = TraceOp;

    /// The stream is infinite; `next` always returns `Some`.
    fn next(&mut self) -> Option<TraceOp> {
        Some(self.next_op())
    }
}

/// The walker is the *live* instruction source: wrapping it in an
/// `ipsim_stream::Tee` captures a run to disk, and a stored capture
/// replays through `ipsim_stream::ReplaySource` as an identical stream.
impl ipsim_stream::TraceSource for TraceWalker<'_> {
    fn next_op(&mut self) -> TraceOp {
        TraceWalker::next_op(self)
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        // Generate a quantum's worth of ops behind a single virtual call,
        // with runs of body instructions served from the batched loop.
        TraceWalker::next_block(self, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;
    use ipsim_types::LineSize;
    use std::collections::HashSet;

    fn walker(prog: &Program, w: Workload, seed: u64) -> TraceWalker<'_> {
        TraceWalker::new(prog, w.profile(), 0, seed)
    }

    #[test]
    fn stream_is_self_consistent() {
        let prog = Workload::TpcW.build_program(1);
        let mut w = walker(&prog, Workload::TpcW, 2);
        let mut prev = w.next_op();
        for _ in 0..200_000 {
            let op = w.next_op();
            assert_eq!(op.pc, prev.next_pc(), "stream broke after {prev:?}");
            prev = op;
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let prog = Workload::Web.build_program(1);
        let mut a = walker(&prog, Workload::Web, 7);
        let mut b = walker(&prog, Workload::Web, 7);
        for _ in 0..20_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let prog = Workload::Web.build_program(1);
        let mut a = walker(&prog, Workload::Web, 1);
        let mut b = walker(&prog, Workload::Web, 2);
        let diverged = (0..10_000).any(|_| a.next_op() != b.next_op());
        assert!(diverged);
    }

    #[test]
    fn stack_depth_never_exceeds_max() {
        let prog = Workload::JApp.build_program(1);
        let max = Workload::JApp.profile().max_call_depth as usize;
        let mut w = walker(&prog, Workload::JApp, 3);
        for _ in 0..200_000 {
            w.next_op();
            assert!(w.stack_depth() <= max);
        }
    }

    #[test]
    fn cti_mix_is_plausible() {
        let prog = Workload::Db.build_program(1);
        let mut w = walker(&prog, Workload::Db, 4);
        let n = 300_000;
        let mut cond = 0u32;
        let mut calls = 0u32;
        let mut returns = 0u32;
        let mut traps = 0u32;
        for _ in 0..n {
            if let OpKind::Cti { class, .. } = w.next_op().kind {
                match class {
                    CtiClass::CondBranch => cond += 1,
                    CtiClass::Call | CtiClass::Jump => calls += 1,
                    CtiClass::Return => returns += 1,
                    CtiClass::Trap => traps += 1,
                    _ => {}
                }
            }
        }
        // Small basic blocks => conditional branches every handful of
        // instructions; calls/returns roughly balance.
        assert!(cond as f64 / n as f64 > 0.02, "cond {cond}");
        assert!(calls > 0 && returns > 0);
        // Calls outnumber returns somewhat: each phase function's own
        // top-level return is emitted as a dispatch Jump, not a Return.
        let ratio = calls as f64 / returns as f64;
        assert!((0.5..3.0).contains(&ratio), "call/return ratio {ratio}");
        // Traps at ~4e-6 per body instruction over 300k ops: a handful.
        assert!(traps < 50, "traps {traps}");
    }

    #[test]
    fn instruction_footprint_is_large() {
        let prog = Workload::Db.build_program(1);
        let mut w = walker(&prog, Workload::Db, 5);
        let ls = LineSize::default();
        let mut lines = HashSet::new();
        for _ in 0..2_000_000 {
            lines.insert(w.next_op().pc.line(ls));
        }
        // Touched code must exceed the 32 KB L1I (512 lines) by a wide
        // margin for the paper's miss rates to be reproducible.
        assert!(lines.len() > 4_000, "touched {} lines", lines.len());
    }

    #[test]
    fn loads_and_stores_present_with_data_addresses() {
        let prog = Workload::Web.build_program(1);
        let mut w = walker(&prog, Workload::Web, 6);
        let mut loads = 0;
        let mut stores = 0;
        for _ in 0..50_000 {
            match w.next_op().kind {
                OpKind::Load { addr } => {
                    loads += 1;
                    assert!(addr.0 >= (1 << 32));
                }
                OpKind::Store { addr } => {
                    stores += 1;
                    assert!(addr.0 >= (1 << 32));
                }
                _ => {}
            }
        }
        assert!(loads > 5_000, "loads {loads}");
        assert!(stores > 1_000, "stores {stores}");
        assert!(loads > stores);
    }

    #[test]
    fn next_block_matches_next_op_stream() {
        let prog = Workload::Db.build_program(1);
        // Block sizes that straddle basic-block boundaries in different
        // ways; 200k ops is enough to hit traps, deep calls and dispatch.
        for block in [1usize, 7, 16, 64] {
            let mut by_op = walker(&prog, Workload::Db, 11);
            let mut by_block = walker(&prog, Workload::Db, 11);
            let mut buf = vec![
                TraceOp {
                    pc: ipsim_types::Addr(0),
                    kind: OpKind::Other
                };
                block
            ];
            for round in 0..200_000 / block {
                by_block.next_block(&mut buf);
                for (k, got) in buf.iter().enumerate() {
                    let want = by_op.next_op();
                    assert_eq!(*got, want, "block={block} round={round} slot={k}");
                }
            }
        }
    }

    #[test]
    fn iterator_interface_matches_next_op() {
        let prog = Workload::Web.build_program(1);
        let mut a = walker(&prog, Workload::Web, 9);
        let b = walker(&prog, Workload::Web, 9);
        let collected: Vec<_> = b.take(100).collect();
        for op in collected {
            assert_eq!(op, a.next_op());
        }
    }
}
