//! Workload profiles: named parameter sets for the four commercial
//! applications the paper studies.
//!
//! The presets are *calibrated*, not measured: their parameters were tuned
//! so that the default cache configuration reproduces the paper's published
//! miss rates (Figure 1), miss-category breakdowns (Figure 3) and L2
//! behaviour (Figure 2). See `DESIGN.md` for the calibration targets and
//! `EXPERIMENTS.md` for the achieved values.

use crate::builder::ProgramBuilder;
use crate::program::Program;

/// One of the paper's four commercial applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// OLTP database workload ("DB").
    Db,
    /// TPC-W transactional web benchmark.
    TpcW,
    /// SPECjAppServer2002 Java application server ("jApp").
    JApp,
    /// SPECweb99 web server ("Web").
    Web,
}

impl Workload {
    /// All four workloads, in the paper's presentation order.
    pub const ALL: [Workload; 4] = [Workload::Db, Workload::TpcW, Workload::JApp, Workload::Web];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Db => "DB",
            Workload::TpcW => "TPC-W",
            Workload::JApp => "jApp",
            Workload::Web => "Web",
        }
    }

    /// The calibrated parameter set for this workload.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Workload::Db => WorkloadProfile::db(),
            Workload::TpcW => WorkloadProfile::tpcw(),
            Workload::JApp => WorkloadProfile::japp(),
            Workload::Web => WorkloadProfile::web(),
        }
    }

    /// Builds this workload's static program with the given seed.
    ///
    /// The program seed determines code structure; walkers take separate
    /// seeds for dynamic behaviour, so cores running "the same binary"
    /// share one program built from one seed.
    pub fn build_program(self, seed: u64) -> Program {
        ProgramBuilder::new(self.profile(), seed).build()
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters controlling synthetic program structure and dynamic
/// behaviour.
///
/// Field groups:
/// * *code shape* — function count and size distributions set the
///   instruction footprint,
/// * *terminator mix* — fractions of block terminators of each kind set the
///   CTI frequency and thus the miss-category breakdown,
/// * *branch behaviour* — direction/taken probabilities,
/// * *call structure* — popularity skew and layout quality govern
///   discontinuity distance and repetition,
/// * *data side* — footprint and locality tiers govern the L2 data miss
///   rate and its sensitivity to prefetch pollution.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Display name.
    pub name: &'static str,
    /// Number of ordinary functions.
    pub n_functions: u32,
    /// Number of trap-handler functions (small, at top of address space).
    pub n_trap_handlers: u32,
    /// Mean *extra* blocks per function beyond the first (geometric).
    pub blocks_per_fn_mean: f64,
    /// Mean *extra* instructions per block beyond the first (geometric).
    pub instrs_per_block_mean: f64,
    /// Hot-tier function count: the L1I-scale working set. Dispatch and
    /// call targets land here with probability `code_hot_prob`.
    pub code_hot_fns: u32,
    /// Warm-tier function count (disjoint from hot): the L2-scale code
    /// working set.
    pub code_warm_fns: u32,
    /// Probability a *call* target is a hot-tier function. Dynamic calls
    /// overwhelmingly hit a small set of hot utility/leaf functions, which
    /// keeps the footprint between a call and its return small (returns
    /// rarely miss, as in the paper's Figure 3).
    pub call_hot_prob: f64,
    /// Probability a call target is warm-tier; the remainder is cold.
    pub call_warm_prob: f64,
    /// Probability a *transaction dispatch* target is hot-tier. Dispatch
    /// spreads much wider than calls — it is what drags warm and cold code
    /// into the caches and produces the L2-scale instruction footprint.
    pub dispatch_hot_prob: f64,
    /// Probability a dispatch target is warm-tier; the remainder is cold.
    pub dispatch_warm_prob: f64,
    /// Fraction of non-final block terminators that are conditional
    /// branches.
    pub cond_branch_frac: f64,
    /// Fraction that are unconditional branches.
    pub uncond_branch_frac: f64,
    /// Fraction that are direct calls.
    pub call_frac: f64,
    /// Fraction that are indirect calls (jumps).
    pub indirect_call_frac: f64,
    /// Fraction that are early returns (in addition to the mandatory final
    /// return).
    pub early_return_frac: f64,
    /// Probability a conditional branch is forward (else backward/loop).
    pub cond_fwd_frac: f64,
    /// Fraction of forward conditional branches that are *rarely taken*
    /// guards (error paths / slow paths): low taken probability, far-away
    /// cold targets. These produce the taken-forward branch misses that
    /// dominate the paper's branch-miss breakdown.
    pub rare_branch_frac: f64,
    /// Mean extra blocks skipped by a forward branch (geometric, ≥ 1).
    pub fwd_skip_mean: f64,
    /// Mean extra blocks spanned by a backward branch (geometric, ≥ 1).
    pub bwd_span_mean: f64,
    /// Taken probability for forward conditional branches.
    pub fwd_taken_prob: f64,
    /// Taken probability for backward conditional branches (loop
    /// continuation).
    pub bwd_taken_prob: f64,
    /// Per-instruction trap probability.
    pub trap_prob: f64,
    /// Fraction of body instructions that are loads.
    pub load_frac: f64,
    /// Fraction of body instructions that are stores.
    pub store_frac: f64,
    /// Maximum call-stack depth.
    pub max_call_depth: u32,
    /// Mean transaction length in instructions. After the budget is spent,
    /// calls stop opening new frames and the stack drains back to the
    /// dispatch loop, which samples the next transaction. Keeps the
    /// call-driven walk from pinning execution inside a small set of hot
    /// functions forever.
    pub txn_len_mean: f64,
    /// Number of popularity-adjacent functions forming one transaction's
    /// *service*: the dispatch loop keeps dispatching phases within the
    /// current service until the transaction budget is spent. The first
    /// pass through a (warm/cold) service faults its code in — mostly
    /// sequential misses, as in the paper — and later phases reuse it.
    pub service_span: u32,
    /// Probability each function is placed in popularity order (1.0 =
    /// perfect link-time layout; lower values scatter hot functions).
    pub layout_quality: f64,
    /// Total data footprint in 64 B lines (per core).
    pub data_footprint_lines: u64,
    /// Hot-tier size in lines (L1-resident working set).
    pub data_hot_lines: u64,
    /// Warm-tier size in lines (L2-resident working set).
    pub data_warm_lines: u64,
    /// Probability a data reference hits the hot tier.
    pub data_hot_prob: f64,
    /// Probability a data reference hits the warm tier (hot excluded).
    pub data_warm_prob: f64,
}

impl WorkloadProfile {
    /// OLTP database: very large code and data footprints, deep call
    /// chains, flat-ish popularity.
    pub fn db() -> WorkloadProfile {
        WorkloadProfile {
            name: "DB",
            n_functions: 20_000,
            n_trap_handlers: 12,
            blocks_per_fn_mean: 12.0,
            instrs_per_block_mean: 4.5,
            code_hot_fns: 380,
            code_warm_fns: 2_400,
            call_hot_prob: 0.93,
            call_warm_prob: 0.065,
            dispatch_hot_prob: 0.60,
            dispatch_warm_prob: 0.33,
            cond_branch_frac: 0.40,
            uncond_branch_frac: 0.10,
            call_frac: 0.11,
            indirect_call_frac: 0.010,
            early_return_frac: 0.03,
            cond_fwd_frac: 0.82,
            rare_branch_frac: 0.50,
            fwd_skip_mean: 2.0,
            bwd_span_mean: 2.2,
            fwd_taken_prob: 0.60,
            bwd_taken_prob: 0.55,
            trap_prob: 4.0e-6,
            load_frac: 0.24,
            store_frac: 0.09,
            max_call_depth: 12,
            txn_len_mean: 4_000.0,
            service_span: 16,
            layout_quality: 0.85,
            data_footprint_lines: 1 << 20, // 64 MB
            data_hot_lines: 384,           // 24 KB: L1-resident
            data_warm_lines: 7_000,        // ~320 KB per core: L2-resident
            data_hot_prob: 0.925,
            data_warm_prob: 0.068,
        }
    }

    /// TPC-W: transactional web server; large middleware-style code.
    pub fn tpcw() -> WorkloadProfile {
        WorkloadProfile {
            name: "TPC-W",
            n_functions: 14_000,
            n_trap_handlers: 12,
            blocks_per_fn_mean: 10.0,
            instrs_per_block_mean: 4.5,
            code_hot_fns: 300,
            code_warm_fns: 2_000,
            call_hot_prob: 0.94,
            call_warm_prob: 0.06,
            dispatch_hot_prob: 0.64,
            dispatch_warm_prob: 0.29,
            cond_branch_frac: 0.40,
            uncond_branch_frac: 0.10,
            call_frac: 0.11,
            indirect_call_frac: 0.010,
            early_return_frac: 0.03,
            cond_fwd_frac: 0.83,
            rare_branch_frac: 0.50,
            fwd_skip_mean: 2.0,
            bwd_span_mean: 2.0,
            fwd_taken_prob: 0.58,
            bwd_taken_prob: 0.55,
            trap_prob: 3.0e-6,
            load_frac: 0.23,
            store_frac: 0.09,
            max_call_depth: 12,
            txn_len_mean: 3_500.0,
            service_span: 14,
            layout_quality: 0.85,
            data_footprint_lines: 1 << 19, // 32 MB
            data_hot_lines: 384,
            data_warm_lines: 6_500,
            data_hot_prob: 0.89,
            data_warm_prob: 0.10,
        }
    }

    /// SPECjAppServer2002: Java application server — the largest
    /// instruction working set (highest L1I miss rate in the paper), small
    /// functions, frequent virtual dispatch.
    pub fn japp() -> WorkloadProfile {
        WorkloadProfile {
            name: "jApp",
            n_functions: 24_000,
            n_trap_handlers: 12,
            blocks_per_fn_mean: 8.0,
            instrs_per_block_mean: 4.0,
            code_hot_fns: 900,
            code_warm_fns: 2_800,
            call_hot_prob: 0.92,
            call_warm_prob: 0.08,
            dispatch_hot_prob: 0.66,
            dispatch_warm_prob: 0.28,
            cond_branch_frac: 0.38,
            uncond_branch_frac: 0.10,
            call_frac: 0.12,
            indirect_call_frac: 0.012,
            early_return_frac: 0.03,
            cond_fwd_frac: 0.84,
            rare_branch_frac: 0.50,
            fwd_skip_mean: 1.8,
            bwd_span_mean: 1.8,
            fwd_taken_prob: 0.57,
            bwd_taken_prob: 0.52,
            trap_prob: 3.0e-6,
            load_frac: 0.24,
            store_frac: 0.10,
            max_call_depth: 12,
            txn_len_mean: 3_000.0,
            service_span: 18,
            layout_quality: 0.80,
            data_footprint_lines: 1 << 19, // 32 MB
            data_hot_lines: 384,
            data_warm_lines: 7_000,
            data_hot_prob: 0.92,
            data_warm_prob: 0.072,
        }
    }

    /// SPECweb99: static/dynamic web serving — the smallest instruction
    /// working set of the four (lowest L2 instruction miss rate), more
    /// skewed popularity.
    pub fn web() -> WorkloadProfile {
        WorkloadProfile {
            name: "Web",
            n_functions: 7_000,
            n_trap_handlers: 12,
            blocks_per_fn_mean: 10.0,
            instrs_per_block_mean: 5.0,
            code_hot_fns: 260,
            code_warm_fns: 700,
            call_hot_prob: 0.96,
            call_warm_prob: 0.04,
            dispatch_hot_prob: 0.74,
            dispatch_warm_prob: 0.21,
            cond_branch_frac: 0.40,
            uncond_branch_frac: 0.09,
            call_frac: 0.10,
            indirect_call_frac: 0.008,
            early_return_frac: 0.03,
            cond_fwd_frac: 0.83,
            rare_branch_frac: 0.50,
            fwd_skip_mean: 2.0,
            bwd_span_mean: 2.2,
            fwd_taken_prob: 0.58,
            bwd_taken_prob: 0.58,
            trap_prob: 5.0e-6,
            load_frac: 0.22,
            store_frac: 0.08,
            max_call_depth: 10,
            txn_len_mean: 2_500.0,
            service_span: 10,
            layout_quality: 0.88,
            data_footprint_lines: 1 << 18, // 16 MB
            data_hot_lines: 384,
            data_warm_lines: 5_000,
            data_hot_prob: 0.94,
            data_warm_prob: 0.054,
        }
    }

    /// Sum of the terminator-kind fractions (must be ≤ 1; the remainder
    /// falls through).
    pub fn terminator_frac_total(&self) -> f64 {
        self.cond_branch_frac
            + self.uncond_branch_frac
            + self.call_frac
            + self.indirect_call_frac
            + self.early_return_frac
    }

    /// Checks that probabilities are sane. Used by the builder.
    ///
    /// # Panics
    ///
    /// Panics when a fraction lies outside `[0, 1]` or the terminator mix
    /// exceeds 1.
    pub fn assert_valid(&self) {
        let probs = [
            self.cond_branch_frac,
            self.uncond_branch_frac,
            self.call_frac,
            self.indirect_call_frac,
            self.early_return_frac,
            self.cond_fwd_frac,
            self.rare_branch_frac,
            self.fwd_taken_prob,
            self.bwd_taken_prob,
            self.trap_prob,
            self.load_frac,
            self.store_frac,
            self.layout_quality,
            self.data_hot_prob,
            self.data_warm_prob,
        ];
        for p in probs {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        assert!(
            self.terminator_frac_total() <= 1.0,
            "terminator fractions exceed 1"
        );
        assert!(
            self.load_frac + self.store_frac <= 1.0,
            "memory-op fractions exceed 1"
        );
        assert!(
            self.data_hot_prob + self.data_warm_prob <= 1.0,
            "data tier probabilities exceed 1"
        );
        assert!(self.n_functions > 0, "need at least one function");
        assert!(self.txn_len_mean >= 1.0, "transaction length must be >= 1");
        assert!(
            self.service_span > 0 && self.service_span <= self.n_functions,
            "service span must be positive and fit the function count"
        );
        assert!(
            self.code_hot_fns > 0 && self.code_hot_fns + self.code_warm_fns <= self.n_functions,
            "code tiers must fit within the function count"
        );
        assert!(
            self.call_hot_prob + self.call_warm_prob <= 1.0
                && self.dispatch_hot_prob + self.dispatch_warm_prob <= 1.0,
            "code tier probabilities exceed 1"
        );
        assert!(
            self.data_hot_lines <= self.data_warm_lines
                && self.data_warm_lines <= self.data_footprint_lines,
            "data tiers must nest"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_valid() {
        for w in Workload::ALL {
            w.profile().assert_valid();
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::Db.name(), "DB");
        assert_eq!(Workload::TpcW.name(), "TPC-W");
        assert_eq!(Workload::JApp.name(), "jApp");
        assert_eq!(Workload::Web.name(), "Web");
        assert_eq!(format!("{}", Workload::JApp), "jApp");
    }

    #[test]
    fn japp_has_largest_code_web_smallest() {
        let japp = Workload::JApp.profile();
        let web = Workload::Web.profile();
        assert!(japp.n_functions > web.n_functions);
        assert!(
            japp.code_hot_fns > web.code_hot_fns,
            "jApp has the larger hot code set"
        );
    }
}
