//! Data-reference address generation with a hot / warm / cold locality
//! hierarchy.

use ipsim_types::{Addr, Rng64};

/// Byte address where per-core data regions begin (well above any code).
const DATA_BASE: u64 = 1 << 32;
/// Line size assumed for tier bookkeeping (matches the default config).
const LINE_BYTES: u64 = 64;

/// Generates load/store addresses for one core.
///
/// References fall into three nested tiers, mimicking the stack-distance
/// profile of commercial workloads:
///
/// * **hot** — a small, L1-resident working set (stack frames, hot
///   descriptors),
/// * **warm** — an L2-scale working set (buffer pool / heap hot pages);
///   this is the tier that instruction-prefetch pollution of the L2 evicts,
/// * **cold** — the full footprint (rarely-reused pages), which misses the
///   L2 regardless.
///
/// Each core's region is disjoint (private heaps); there is no sharing, so
/// no coherence model is needed.
#[derive(Debug, Clone)]
pub struct DataGen {
    base: u64,
    footprint_lines: u64,
    hot_lines: u64,
    warm_lines: u64,
    hot_prob: f64,
    warm_prob: f64,
    rng: Rng64,
}

impl DataGen {
    /// Creates a generator for `core_id` with the given tier geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `hot_lines <= warm_lines <= footprint_lines`, all
    /// non-zero, and the tier probabilities sum to at most 1.
    pub fn new(
        core_id: u32,
        footprint_lines: u64,
        hot_lines: u64,
        warm_lines: u64,
        hot_prob: f64,
        warm_prob: f64,
        seed: u64,
    ) -> DataGen {
        assert!(
            hot_lines > 0 && hot_lines <= warm_lines && warm_lines <= footprint_lines,
            "data tiers must nest and be non-empty"
        );
        assert!(
            hot_prob >= 0.0 && warm_prob >= 0.0 && hot_prob + warm_prob <= 1.0,
            "tier probabilities must sum to at most 1"
        );
        DataGen {
            // Regions are spaced by the largest plausible footprint so they
            // never overlap across cores.
            base: DATA_BASE + core_id as u64 * (1 << 34),
            footprint_lines,
            hot_lines,
            warm_lines,
            hot_prob,
            warm_prob,
            rng: Rng64::new(seed ^ 0xDA7A_0000_0000_0000),
        }
    }

    /// Draws the next data reference address.
    #[inline]
    pub fn next_addr(&mut self) -> Addr {
        let r = self.rng.f64();
        let line = if r < self.hot_prob {
            self.rng.range(self.hot_lines)
        } else if r < self.hot_prob + self.warm_prob {
            self.rng.range(self.warm_lines)
        } else {
            self.rng.range(self.footprint_lines)
        };
        // A random word within the line; alignment is irrelevant to the
        // line-granular caches but keeps addresses realistic.
        let offset = (self.rng.next_u64() & 0x38) | 0x4;
        Addr(self.base + line * LINE_BYTES + offset)
    }

    /// First byte of this core's data region.
    pub fn region_base(&self) -> Addr {
        Addr(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::LineSize;

    fn gen() -> DataGen {
        DataGen::new(0, 1 << 18, 128, 4096, 0.6, 0.3, 11)
    }

    #[test]
    fn addresses_stay_in_region() {
        let mut g = gen();
        let base = g.region_base().0;
        let end = base + (1u64 << 18) * 64;
        for _ in 0..10_000 {
            let a = g.next_addr().0;
            assert!(a >= base && a < end);
        }
    }

    #[test]
    fn cores_get_disjoint_regions() {
        let g0 = DataGen::new(0, 1 << 18, 128, 4096, 0.6, 0.3, 1);
        let g1 = DataGen::new(1, 1 << 18, 128, 4096, 0.6, 0.3, 1);
        assert!(g1.region_base().0 >= g0.region_base().0 + (1u64 << 18) * 64);
    }

    #[test]
    fn hot_tier_receives_its_share() {
        let mut g = gen();
        let ls = LineSize::default();
        let base_line = g.region_base().line(ls).0;
        let n = 50_000;
        let hot_hits = (0..n)
            .filter(|_| {
                let line = g.next_addr().line(ls).0 - base_line;
                line < 128
            })
            .count();
        // hot_prob 0.6 plus incidental warm/cold references landing in the
        // first 128 lines (tiny). Expect ~0.60-0.62.
        let frac = hot_hits as f64 / n as f64;
        assert!((0.57..0.67).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DataGen::new(2, 1 << 16, 64, 1024, 0.5, 0.3, 42);
        let mut b = DataGen::new(2, 1 << 16, 64, 1024, 0.5, 0.3, 42);
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    #[should_panic(expected = "nest")]
    fn non_nested_tiers_panic() {
        DataGen::new(0, 100, 50, 20, 0.5, 0.3, 1);
    }
}
