//! The static synthetic program: functions, basic blocks and control-flow
//! structure, laid out in a flat address space.

use ipsim_types::instr::INSTR_BYTES;
use ipsim_types::{Addr, Rng64};

/// Three-tier popularity sampler over function ranks: a small uniform hot
/// tier (the L1I-scale working set), a warm tier (L2-scale) and a cold
/// tail. Mirrors the data generator's locality hierarchy and gives the
/// workload profiles direct, well-behaved knobs over working-set sizes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TierSampler {
    pub(crate) hot: u32,
    pub(crate) warm: u32,
    pub(crate) total: u32,
    pub(crate) hot_prob: f64,
    pub(crate) warm_prob: f64,
}

impl TierSampler {
    /// Draws a popularity rank (0 = hottest region).
    pub(crate) fn sample(&self, rng: &mut Rng64) -> u32 {
        let r = rng.f64();
        if r < self.hot_prob {
            rng.range(self.hot as u64) as u32
        } else if r < self.hot_prob + self.warm_prob {
            self.hot + rng.range(self.warm as u64) as u32
        } else {
            let cold = self.total - self.hot - self.warm;
            if cold == 0 {
                rng.range(self.total as u64) as u32
            } else {
                self.hot + self.warm + rng.range(cold as u64) as u32
            }
        }
    }
}

/// Identifies a function by its layout position (function 0 sits at the
/// lowest code address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// The block simply continues into the next block (the "terminator"
    /// slot holds an ordinary instruction).
    FallThrough,
    /// A conditional PC-relative branch to `target` (a block index within
    /// the same function), taken with probability `taken_prob` on each
    /// dynamic execution.
    CondBranch {
        /// Target block index within the same function.
        target: u32,
        /// Per-execution probability the branch is taken.
        taken_prob: f32,
    },
    /// An unconditional PC-relative branch to block `target`.
    UncondBranch {
        /// Target block index within the same function.
        target: u32,
    },
    /// A direct call; execution resumes at the next block on return.
    Call {
        /// The (single, fixed) callee — direct call targets are embedded in
        /// the instruction, the property that makes most discontinuities
        /// single-target.
        callee: FuncId,
    },
    /// An indirect call (SPARC `jmpl`) through a register: one of several
    /// possible callees, chosen per dynamic execution.
    IndirectCall {
        /// Candidate callees with selection weights.
        callees: Vec<(FuncId, f32)>,
    },
    /// Return to the caller.
    Return,
}

/// A basic block: `n_instrs` instructions at `start`, the last being the
/// terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Address of the block's first instruction.
    pub start: Addr,
    /// Instruction count including the terminator slot (always ≥ 1).
    pub n_instrs: u32,
    /// How the block ends.
    pub terminator: Terminator,
}

impl Block {
    /// Address of the instruction at `idx` within this block.
    #[inline]
    pub fn instr_addr(&self, idx: u32) -> Addr {
        debug_assert!(idx < self.n_instrs);
        self.start.offset(idx as u64 * INSTR_BYTES)
    }
}

/// One function: contiguous basic blocks; block 0 is the entry, the last
/// block returns.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Basic blocks in layout order.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The function's entry address.
    pub fn entry(&self) -> Addr {
        self.blocks[0].start
    }

    /// Total instructions across the function's blocks.
    pub fn n_instrs(&self) -> u32 {
        self.blocks.iter().map(|b| b.n_instrs).sum()
    }
}

/// Compact terminator discriminant for the flat walk table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalkKind {
    FallThrough,
    CondBranch,
    UncondBranch,
    Call,
    IndirectCall,
    Return,
}

/// One basic block in the flat walk table: everything the walker's
/// dispatch loop needs, in 24 bytes with no nested indirection. `target`
/// is overloaded by `kind` — a block index (branches), a callee function
/// (calls) or an index into the indirect-callee side table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalkBlock {
    pub(crate) start: Addr,
    pub(crate) n_instrs: u32,
    pub(crate) target: u32,
    pub(crate) prob: f32,
    pub(crate) kind: WalkKind,
}

/// A complete synthetic static program.
///
/// Built by [`ProgramBuilder`](crate::ProgramBuilder); walked by
/// [`TraceWalker`](crate::TraceWalker). Several walkers (one per simulated
/// core) may share one `Program` — that is how we model multiple cores
/// running the same binary with shared code but independent control flow.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) functions: Vec<Function>,
    pub(crate) code_start: Addr,
    pub(crate) code_bytes: u64,
    /// Number of ordinary (non-trap-handler) functions; handlers occupy the
    /// tail of `functions`.
    pub(crate) n_regular: u32,
    /// Popularity permutation: `by_rank[r]` is the function holding
    /// popularity rank `r` (rank 0 hottest).
    pub(crate) by_rank: Vec<FuncId>,
    /// Sampler over popularity ranks used for transaction dispatch.
    pub(crate) dispatch: TierSampler,
    /// Flat walk table: every function's blocks, concatenated in layout
    /// order. A pure access-path mirror of `functions` — the walker reads
    /// one 24-byte record per control transfer instead of chasing two
    /// `Vec`s into a 48-byte `Block` with an enum payload.
    pub(crate) walk: Vec<WalkBlock>,
    /// `func_base[f]` is the index of function `f`'s first block in `walk`.
    pub(crate) func_base: Vec<u32>,
    /// Indirect-call candidate tables, referenced by `WalkBlock::target`.
    pub(crate) indirect: Vec<Vec<(FuncId, f32)>>,
}

impl Program {
    /// Assembles a program from its structural parts, deriving the flat
    /// walk table (the builder's single construction point).
    pub(crate) fn assemble(
        functions: Vec<Function>,
        code_start: Addr,
        code_bytes: u64,
        n_regular: u32,
        by_rank: Vec<FuncId>,
        dispatch: TierSampler,
    ) -> Program {
        let mut func_base = Vec::with_capacity(functions.len());
        let mut walk = Vec::new();
        let mut indirect = Vec::new();
        for f in &functions {
            func_base.push(walk.len() as u32);
            for b in &f.blocks {
                let (kind, target, prob) = match &b.terminator {
                    Terminator::FallThrough => (WalkKind::FallThrough, 0, 0.0),
                    Terminator::CondBranch { target, taken_prob } => {
                        (WalkKind::CondBranch, *target, *taken_prob)
                    }
                    Terminator::UncondBranch { target } => (WalkKind::UncondBranch, *target, 0.0),
                    Terminator::Call { callee } => (WalkKind::Call, callee.0, 0.0),
                    Terminator::IndirectCall { callees } => {
                        indirect.push(callees.clone());
                        (WalkKind::IndirectCall, (indirect.len() - 1) as u32, 0.0)
                    }
                    Terminator::Return => (WalkKind::Return, 0, 0.0),
                };
                walk.push(WalkBlock {
                    start: b.start,
                    n_instrs: b.n_instrs,
                    target,
                    prob,
                    kind,
                });
            }
        }
        Program {
            functions,
            code_start,
            code_bytes,
            n_regular,
            by_rank,
            dispatch,
            walk,
            func_base,
            indirect,
        }
    }

    /// The walk-table record for block `block` of function `func`.
    #[inline]
    pub(crate) fn walk_block(&self, func: u32, block: u32) -> &WalkBlock {
        &self.walk[(self.func_base[func as usize] + block) as usize]
    }

    /// Entry address of function `id`, served from the walk table.
    #[inline]
    pub(crate) fn entry_addr(&self, id: FuncId) -> Addr {
        self.walk[self.func_base[id.0 as usize] as usize].start
    }

    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Total number of functions, including trap handlers.
    pub fn n_functions(&self) -> u32 {
        self.functions.len() as u32
    }

    /// Number of ordinary (callable) functions.
    pub fn n_regular(&self) -> u32 {
        self.n_regular
    }

    /// Lowest code address.
    pub fn code_start(&self) -> Addr {
        self.code_start
    }

    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code_bytes
    }

    /// Draws the entry function for the next top-level transaction.
    pub fn next_transaction(&self, rng: &mut Rng64) -> FuncId {
        self.by_rank[self.dispatch.sample(rng) as usize]
    }

    /// Draws a popularity rank from the dispatch tiers (used by the walker
    /// to centre a transaction's service window).
    pub fn dispatch_rank(&self, rng: &mut Rng64) -> u32 {
        self.dispatch.sample(rng)
    }

    /// The function holding popularity rank `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn function_at_rank(&self, rank: u32) -> FuncId {
        self.by_rank[rank as usize]
    }

    /// Draws a trap-handler function.
    ///
    /// # Panics
    ///
    /// Panics if the program was built without trap handlers.
    pub fn trap_handler(&self, rng: &mut Rng64) -> FuncId {
        let n_handlers = self.functions.len() as u32 - self.n_regular;
        assert!(n_handlers > 0, "program has no trap handlers");
        FuncId(self.n_regular + rng.range(n_handlers as u64) as u32)
    }

    /// Checks structural invariants; used by tests and the builder.
    ///
    /// Verified invariants: blocks are laid out contiguously and in order;
    /// every branch target is a valid block index in its function; every
    /// call target is a valid function; the last block of every function
    /// returns; code addresses start at `code_start` and span `code_bytes`.
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = self.code_start;
        for (fi, f) in self.functions.iter().enumerate() {
            if f.blocks.is_empty() {
                return Err(format!("function {fi} has no blocks"));
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                if b.start != cursor {
                    return Err(format!(
                        "function {fi} block {bi}: start {} != cursor {}",
                        b.start, cursor
                    ));
                }
                if b.n_instrs == 0 {
                    return Err(format!("function {fi} block {bi} empty"));
                }
                cursor = cursor.offset(b.n_instrs as u64 * INSTR_BYTES);
                let nb = f.blocks.len() as u32;
                match &b.terminator {
                    Terminator::CondBranch { target, taken_prob } => {
                        if *target >= nb {
                            return Err(format!("function {fi} block {bi}: bad target"));
                        }
                        if !(0.0..=1.0).contains(taken_prob) {
                            return Err(format!("function {fi} block {bi}: bad prob"));
                        }
                    }
                    Terminator::UncondBranch { target } => {
                        if *target >= nb {
                            return Err(format!("function {fi} block {bi}: bad target"));
                        }
                    }
                    Terminator::Call { callee } => {
                        if callee.0 >= self.n_regular {
                            return Err(format!("function {fi} block {bi}: bad callee"));
                        }
                    }
                    Terminator::IndirectCall { callees } => {
                        if callees.is_empty() {
                            return Err(format!("function {fi} block {bi}: no callees"));
                        }
                        for (c, w) in callees {
                            if c.0 >= self.n_regular || *w <= 0.0 {
                                return Err(format!("function {fi} block {bi}: bad callee"));
                            }
                        }
                    }
                    Terminator::FallThrough | Terminator::Return => {}
                }
                // Non-final fall-through/branch blocks need a successor.
                let is_last = bi as u32 == nb - 1;
                if is_last && !matches!(b.terminator, Terminator::Return) {
                    return Err(format!("function {fi}: last block does not return"));
                }
            }
        }
        let span = cursor.0 - self.code_start.0;
        if span != self.code_bytes {
            return Err(format!(
                "code_bytes {} != laid-out span {span}",
                self.code_bytes
            ));
        }
        if self.by_rank.len() != self.n_regular as usize {
            return Err("popularity permutation size mismatch".to_string());
        }
        Ok(())
    }
}
