//! Zipf-distributed sampling over ranks `0..n`.

use ipsim_types::Rng64;

/// Samples ranks with probability proportional to `1 / (rank + 1)^s`.
///
/// Used for function popularity: a small set of hot functions receives most
/// calls (rank 0 is hottest), with a long tail of cold code — the shape that
/// gives commercial workloads their large instruction footprints.
///
/// Sampling is by binary search over a precomputed CDF: `O(log n)` per
/// sample, exact, and allocation-free after construction.
///
/// # Examples
///
/// ```
/// use ipsim_trace::ZipfSampler;
/// use ipsim_types::Rng64;
///
/// let z = ZipfSampler::new(1000, 1.0);
/// let mut rng = Rng64::new(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        ZipfSampler::with_offset(n, s, 0.0)
    }

    /// Builds a *shifted* Zipf sampler: `p(rank) ∝ 1 / (rank + 1 + k)^s`.
    ///
    /// The offset `k` flattens the head of the distribution so that no
    /// single rank dominates — with a plain Zipf, the idiosyncratic
    /// structure of the top one or two functions dominates whole-program
    /// behaviour, which makes workload calibration needlessly noisy.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, `s` is negative or `k` is negative.
    pub fn with_offset(n: usize, s: f64, k: f64) -> ZipfSampler {
        assert!(n > 0, "zipf sampler needs at least one rank");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        assert!(k >= 0.0, "zipf offset must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64 + k).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler has exactly one rank (always returns 0).
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0; kept for clippy convention
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        // partition_point returns the first index with cdf[i] > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_in_range() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = Rng64::new(5);
        for _ in 0..5_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = Rng64::new(6);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99]);
        // Harmonic number H_100 ~ 5.19; p(0) ~ 0.193.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.193).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = Rng64::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = Rng64::new(8);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
