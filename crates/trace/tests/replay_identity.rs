//! Three-way stream identity: a live walker, a buffered (per-op decode)
//! replay of its captured trace, and a zero-copy arena replay of the same
//! trace must all produce the identical op sequence — across every
//! workload profile and a spread of seeds.
//!
//! This is the proof obligation behind the harness's capture/replay and
//! arena paths: any stream source may feed any run, so every source must
//! be byte-for-byte the same stream. The arena leg additionally exercises
//! `next_slice` with irregular request sizes, the exact access pattern the
//! scheduler produces near stream ends.

use std::io::Cursor;

use ipsim_stream::{ArenaSource, ReplaySource, TraceReader, TraceSource, TraceWriter};
use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::instr::TraceOp;
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Db),
        Just(Workload::TpcW),
        Just(Workload::JApp),
        Just(Workload::Web),
    ]
}

/// Drains `n` ops from a source through `next_block` with an irregular
/// quantum pattern (1, 2, 3, … capped at 16), mimicking scheduler
/// behaviour where the final block of a target window is short.
fn drain_blocks(source: &mut impl TraceSource, n: usize) -> Vec<TraceOp> {
    let mut out = Vec::with_capacity(n);
    let mut quantum = 1usize;
    let filler = TraceOp {
        pc: ipsim_types::Addr(0),
        kind: ipsim_types::instr::OpKind::Other,
    };
    while out.len() < n {
        let take = quantum.min(n - out.len());
        let mut block = vec![filler; take];
        source.next_block(&mut block);
        out.extend_from_slice(&block);
        quantum = (quantum % 16) + 1;
    }
    out
}

/// Drains `n` ops through `next_slice` with the same irregular pattern;
/// panics if the source cannot lend (arena sources always can).
fn drain_slices(source: &mut impl TraceSource, n: usize) -> Vec<TraceOp> {
    let mut out = Vec::with_capacity(n);
    let mut quantum = 1usize;
    while out.len() < n {
        let take = quantum.min(n - out.len());
        let ops = source.next_slice(take).expect("arena sources lend slices");
        assert_eq!(ops.len(), take, "a Some slice has exactly n ops");
        out.extend_from_slice(ops);
        quantum = (quantum % 16) + 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn live_buffered_and_arena_streams_are_identical(
        w in any_workload(),
        program_seed in 0u64..100,
        walker_seed in 0u64..1000,
        n in 1usize..5_000,
    ) {
        // Live leg: generate the reference stream, capturing as we go.
        let prog = w.build_program(program_seed);
        let mut walker = TraceWalker::new(&prog, w.profile(), 0, walker_seed);
        let mut writer = TraceWriter::new(Vec::new(), 0, "identity").unwrap();
        let mut live = Vec::with_capacity(n);
        for _ in 0..n {
            let op = walker.next_op();
            writer.append(&op).unwrap();
            live.push(op);
        }
        let (bytes, stats) = writer.finish_into().unwrap();
        prop_assert_eq!(stats.ops, n as u64);

        // Buffered leg: per-op / per-block decode through ReplaySource.
        let reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
        let mut buffered = ReplaySource::new(reader).unwrap();
        prop_assert!(buffered.next_slice(1).is_none(), "replay cannot lend");
        let replayed = drain_blocks(&mut buffered, n);
        prop_assert_eq!(&replayed, &live, "buffered replay diverged");

        // Zero-copy leg: decode once into an arena, lend slices.
        let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
        let mut arena = Vec::new();
        let arena_stats = reader.decode_all_into(&mut arena).unwrap();
        prop_assert_eq!(arena_stats.ops, n as u64);
        prop_assert_eq!(&arena, &live, "arena decode diverged");
        let mut source = ArenaSource::new(arena.as_slice());
        let sliced = drain_slices(&mut source, n);
        prop_assert_eq!(&sliced, &live, "arena slices diverged");

        // And the same arena rewound serves per-op identically too.
        let mut source = ArenaSource::new(arena.as_slice());
        let per_op: Vec<TraceOp> = (0..n).map(|_| source.next_op()).collect();
        prop_assert_eq!(&per_op, &live, "arena per-op diverged");
    }
}
