//! Property-based tests over the trace generator: for any seed and any
//! workload, the synthesised program is structurally valid and the dynamic
//! stream is self-consistent.

use ipsim_trace::{TraceWalker, Workload};
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Db),
        Just(Workload::TpcW),
        Just(Workload::JApp),
        Just(Workload::Web),
    ]
}

proptest! {
    // Program construction is the expensive part; keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every (workload, seed) pair yields a structurally valid program.
    #[test]
    fn programs_validate(w in any_workload(), seed in 0u64..1000) {
        let prog = w.build_program(seed);
        prop_assert_eq!(prog.validate(), Ok(()));
    }

    /// The dynamic stream is self-consistent for arbitrary seeds: every
    /// op's PC equals the previous op's successor.
    #[test]
    fn streams_are_self_consistent(
        w in any_workload(),
        prog_seed in 0u64..100,
        walk_seed in 0u64..1000,
        core in 0u32..4,
    ) {
        let prog = w.build_program(prog_seed);
        let mut walker = TraceWalker::new(&prog, w.profile(), core, walk_seed);
        let mut prev = walker.next_op();
        for _ in 0..30_000 {
            let op = walker.next_op();
            prop_assert_eq!(op.pc, prev.next_pc());
            prev = op;
        }
    }

    /// All PCs stay inside the program's code segment.
    #[test]
    fn pcs_stay_in_code_segment(w in any_workload(), seed in 0u64..100) {
        let prog = w.build_program(seed);
        let lo = prog.code_start().0;
        let hi = lo + prog.code_bytes();
        let mut walker = TraceWalker::new(&prog, w.profile(), 0, seed ^ 0xABCD);
        for _ in 0..30_000 {
            let pc = walker.next_op().pc.0;
            prop_assert!(pc >= lo && pc < hi, "pc {pc:#x} outside [{lo:#x}, {hi:#x})");
        }
    }
}
