//! Statistical shape checks on the synthetic workloads: the structural
//! properties the calibration relies on must hold for every preset.

use std::collections::HashSet;

use ipsim_trace::{TraceWalker, Workload};
use ipsim_types::instr::{CtiClass, OpKind};
use ipsim_types::LineSize;

const OPS: u64 = 1_000_000;

struct StreamShape {
    cond_per_ki: f64,
    call_per_ki: f64,
    discontinuities_per_ki: f64,
    single_target_frac: f64,
    code_lines: usize,
    load_frac: f64,
    store_frac: f64,
}

fn measure(w: Workload) -> StreamShape {
    let prog = w.build_program(11);
    let mut walker = TraceWalker::new(&prog, w.profile(), 0, 13);
    let ls = LineSize::default();
    let mut cond = 0u64;
    let mut call = 0u64;
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut lines = HashSet::new();
    // Map discontinuity trigger line -> set of observed target lines.
    let mut targets: std::collections::HashMap<u64, HashSet<u64>> =
        std::collections::HashMap::new();
    let mut discontinuities = 0u64;
    let mut prev_line = None;
    for _ in 0..OPS {
        let op = walker.next_op();
        let line = op.pc.line(ls);
        if let Some(prev) = prev_line {
            if line != prev && !line.is_sequential_after(prev) {
                discontinuities += 1;
                targets
                    .entry({
                        let p: ipsim_types::LineAddr = prev;
                        p.0
                    })
                    .or_default()
                    .insert(line.0);
            }
        }
        prev_line = Some(line);
        lines.insert(line);
        match op.kind {
            OpKind::Load { .. } => loads += 1,
            OpKind::Store { .. } => stores += 1,
            OpKind::Cti { class, .. } => match class {
                CtiClass::CondBranch => cond += 1,
                CtiClass::Call => call += 1,
                _ => {}
            },
            OpKind::Other => {}
        }
    }
    let single = targets.values().filter(|t| t.len() == 1).count();
    StreamShape {
        cond_per_ki: cond as f64 / OPS as f64 * 1000.0,
        call_per_ki: call as f64 / OPS as f64 * 1000.0,
        discontinuities_per_ki: discontinuities as f64 / OPS as f64 * 1000.0,
        single_target_frac: single as f64 / targets.len().max(1) as f64,
        code_lines: lines.len(),
        load_frac: loads as f64 / OPS as f64,
        store_frac: stores as f64 / OPS as f64,
    }
}

#[test]
fn conditional_branches_are_frequent() {
    // Small basic blocks => a conditional branch every ~10-20 instructions.
    for w in Workload::ALL {
        let s = measure(w);
        assert!(
            (40.0..150.0).contains(&s.cond_per_ki),
            "{}: {} cond/1k",
            w.name(),
            s.cond_per_ki
        );
    }
}

#[test]
fn calls_are_present_but_subcritical() {
    for w in Workload::ALL {
        let s = measure(w);
        assert!(
            (5.0..60.0).contains(&s.call_per_ki),
            "{}: {} calls/1k",
            w.name(),
            s.call_per_ki
        );
    }
}

#[test]
fn most_discontinuity_triggers_have_a_single_target() {
    // The paper's key enabling observation for the one-target-per-entry
    // table: at line granularity, the majority of discontinuity trigger
    // lines have exactly one target.
    for w in Workload::ALL {
        let s = measure(w);
        assert!(
            s.single_target_frac > 0.5,
            "{}: only {:.0}% of triggers single-target",
            w.name(),
            s.single_target_frac * 100.0
        );
        assert!(
            s.discontinuities_per_ki > 10.0,
            "{}: {} discontinuities/1k",
            w.name(),
            s.discontinuities_per_ki
        );
    }
}

#[test]
fn touched_code_exceeds_the_l1i_by_a_wide_margin() {
    for w in Workload::ALL {
        let s = measure(w);
        // 32 KB L1I = 512 lines; the active footprint must dwarf it.
        assert!(
            s.code_lines > 2_000,
            "{}: touched only {} lines",
            w.name(),
            s.code_lines
        );
    }
}

#[test]
fn memory_op_mix_matches_profiles() {
    for w in Workload::ALL {
        let p = w.profile();
        let s = measure(w);
        // Terminator slots dilute the body-instruction fractions slightly.
        assert!(
            (s.load_frac - p.load_frac).abs() < 0.06,
            "{}: load fraction {} vs profile {}",
            w.name(),
            s.load_frac,
            p.load_frac
        );
        assert!(
            (s.store_frac - p.store_frac).abs() < 0.04,
            "{}: store fraction {} vs profile {}",
            w.name(),
            s.store_frac,
            p.store_frac
        );
        assert!(s.load_frac > s.store_frac, "{}", w.name());
    }
}

#[test]
fn japp_touches_the_most_code() {
    let japp = measure(Workload::JApp).code_lines;
    let web = measure(Workload::Web).code_lines;
    assert!(japp > web, "jApp {japp} lines vs Web {web}");
}
