//! A minimal JSON reader/writer helper.
//!
//! The workspace deliberately has no registry dependencies (see README
//! "Offline builds and dependencies"), so the sinks hand-roll their JSON
//! and this module provides the *other* direction: a small recursive
//! parser the exporters' validators use to prove that what they wrote is
//! well-formed and carries the right fields. It supports the full JSON
//! grammar except that numbers are parsed as `f64` (fine for validation;
//! line addresses are therefore written as hex *strings*, never numbers).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or
/// of trailing garbage after the document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
                        // Surrogates are not reassembled — the sinks never
                        // emit them, so validation treats them as opaque.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // Consume one multi-byte UTF-8 scalar. The input is a
                // &str, so the leading byte determines a valid sequence
                // length; re-validating only that slice keeps string
                // parsing linear (validating the whole tail per character
                // made large artifacts quadratic to parse).
                let len = match b {
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk =
                    std::str::from_utf8(&bytes[*pos..*pos + len]).expect("valid utf8 scalar");
                out.push(chunk.chars().next().expect("non-empty"));
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".to_string()));
        let doc = parse(r#"{"a": [1, 2, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(doc.get("c"), Some(&Json::Bool(false)));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "he said \"hi\"\n\tback\\slash\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }
}
