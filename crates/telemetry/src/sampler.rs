//! Interval time-series sampling.
//!
//! The scheduler in `System::run` dispatches instructions in small quanta;
//! after each quantum it asks the sampler whether the core just crossed
//! its next sampling threshold ([`Sampler::due`], two loads and a compare)
//! and, if so, snapshots the core's cumulative window counters into a
//! [`SampleRow`]. Rows are *cumulative*: consumers diff adjacent rows of
//! the same core to recover per-interval rates, which keeps the hot path
//! free of subtraction state and makes partially-sampled runs (short
//! windows, uneven core progress) well defined.

/// One cumulative snapshot of a core (plus the shared L2) at a sampling
/// threshold. All counters are measured from the start of the measurement
/// window (`reset_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleRow {
    /// Core the snapshot belongs to.
    pub core: u32,
    /// Committed instructions in the window.
    pub instrs: u64,
    /// Core-local cycles in the window.
    pub cycles: u64,
    /// Fetch-stream line transitions.
    pub line_fetches: u64,
    /// L1I demand misses.
    pub l1i_misses: u64,
    /// L1D demand misses.
    pub l1d_misses: u64,
    /// Prefetches issued to the memory system.
    pub pf_issued: u64,
    /// Prefetched lines demand-referenced (timely + late).
    pub pf_useful: u64,
    /// Late first uses.
    pub pf_late: u64,
    /// Prefetch-queue occupancy at the snapshot.
    pub pf_queue: u64,
    /// Shared-L2 demand instruction misses (system-wide).
    pub l2_instr_misses: u64,
    /// Shared-L2 prefetch misses, i.e. off-chip prefetches (system-wide).
    pub l2_prefetch_misses: u64,
}

impl SampleRow {
    /// Column names for the TSV sink, in field order.
    pub const COLUMNS: [&'static str; 12] = [
        "core",
        "instrs",
        "cycles",
        "line_fetches",
        "l1i_misses",
        "l1d_misses",
        "pf_issued",
        "pf_useful",
        "pf_late",
        "pf_queue",
        "l2_instr_misses",
        "l2_prefetch_misses",
    ];

    /// The fields as a dense array, in [`SampleRow::COLUMNS`] order
    /// (`core` widened to `u64`).
    pub fn values(&self) -> [u64; 12] {
        [
            self.core as u64,
            self.instrs,
            self.cycles,
            self.line_fetches,
            self.l1i_misses,
            self.l1d_misses,
            self.pf_issued,
            self.pf_useful,
            self.pf_late,
            self.pf_queue,
            self.l2_instr_misses,
            self.l2_prefetch_misses,
        ]
    }
}

/// Per-core threshold bookkeeping plus the accumulated rows.
#[derive(Debug)]
pub struct Sampler {
    interval: u64,
    /// Absolute per-core executed-instruction count at which the next
    /// sample is due.
    next: Vec<u64>,
    rows: Vec<SampleRow>,
}

impl Sampler {
    /// A sampler for `n_cores` cores sampling every `interval` committed
    /// instructions, with core `i` currently at `executed[i]` absolute
    /// instructions. `interval` is clamped to at least 1.
    pub fn new(interval: u64, executed: &[u64]) -> Sampler {
        let interval = interval.max(1);
        Sampler {
            interval,
            next: executed.iter().map(|e| e + interval).collect(),
            rows: Vec::new(),
        }
    }

    /// The sampling cadence in committed instructions per core.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether core `core` (now at `executed` absolute instructions) has
    /// crossed its sampling threshold. This is the per-quantum hot-path
    /// check.
    #[inline]
    pub fn due(&self, core: usize, executed: u64) -> bool {
        executed >= self.next[core]
    }

    /// Records a snapshot for `row.core` (now at `executed` absolute
    /// instructions) and advances that core's threshold past `executed`.
    pub fn record(&mut self, executed: u64, row: SampleRow) {
        let next = &mut self.next[row.core as usize];
        while *next <= executed {
            *next += self.interval;
        }
        self.rows.push(row);
    }

    /// Drops accumulated rows and re-anchors thresholds at the current
    /// absolute per-core instruction counts (end of warm-up).
    pub fn reset(&mut self, executed: &[u64]) {
        self.rows.clear();
        self.next.clear();
        self.next.extend(executed.iter().map(|e| e + self.interval));
    }

    /// Rows accumulated so far, in record order (interleaved across
    /// cores, nondecreasing `instrs` per core).
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Takes the accumulated rows, leaving the sampler empty but armed.
    pub fn take_rows(&mut self) -> Vec<SampleRow> {
        std::mem::take(&mut self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_crosses_threshold_and_record_advances_it() {
        let mut s = Sampler::new(100, &[0, 0]);
        assert!(!s.due(0, 99));
        assert!(s.due(0, 100));
        assert!(s.due(0, 116));
        s.record(
            116,
            SampleRow {
                core: 0,
                instrs: 116,
                ..SampleRow::default()
            },
        );
        assert!(!s.due(0, 116));
        assert!(!s.due(0, 199));
        assert!(s.due(0, 200));
        // Core 1 is independent.
        assert!(s.due(1, 100));
        assert_eq!(s.rows().len(), 1);
    }

    #[test]
    fn record_skips_multiple_intervals_after_a_long_stall() {
        let mut s = Sampler::new(100, &[0]);
        s.record(
            350,
            SampleRow {
                core: 0,
                instrs: 350,
                ..SampleRow::default()
            },
        );
        assert!(!s.due(0, 399));
        assert!(s.due(0, 400));
    }

    #[test]
    fn reset_rearms_thresholds_and_clears_rows() {
        let mut s = Sampler::new(50, &[0]);
        s.record(50, SampleRow::default());
        s.reset(&[1_000]);
        assert!(s.rows().is_empty());
        assert!(!s.due(0, 1_049));
        assert!(s.due(0, 1_050));
    }

    #[test]
    fn zero_interval_is_clamped() {
        let s = Sampler::new(0, &[0]);
        assert_eq!(s.interval(), 1);
    }
}
