//! # ipsim-telemetry
//!
//! Observability for the simulator: interval time-series sampling,
//! prefetch lifecycle event tracing, and the sinks that turn a run into
//! on-disk artifacts.
//!
//! Every figure the simulator reproduces is an end-of-window aggregate;
//! this crate records *when* things happened inside the window. Two data
//! streams are collected, both strictly optional and zero-cost when off:
//!
//! * **interval samples** — `System::run` snapshots each core's
//!   cumulative counters every N committed instructions into
//!   [`SampleRow`]s (see [`sampler`]);
//! * **lifecycle events** — each core's prefetch pipeline emits a typed,
//!   cycle-stamped [`PfEvent`] at every transition of every prefetched
//!   line (see [`event`] and the validator in [`lifecycle`]).
//!
//! The per-core collector is [`CoreTracer`]: a bounded event buffer plus
//! *exact* per-component counters that keep counting after the buffer
//! fills, so accuracy/coverage/timeliness ratios never suffer from
//! truncation. A finished run is packaged as a [`TelemetryRun`] and
//! serialised by the [`sink`] writers (JSONL, Chrome `trace_event`, TSV),
//! each of which has a matching parser/validator used by tests and the CI
//! smoke job.
//!
//! Nothing in this crate touches simulation semantics: the golden-hash
//! figure test and the `telemetry_determinism` test prove that metrics
//! are bit-identical with tracing on, off, or absent.

pub mod event;
pub mod json;
pub mod lifecycle;
pub mod sampler;
pub mod sink;

use ipsim_core::PrefetchSource;
use ipsim_types::{Cycle, LineAddr};

pub use event::{ComponentCounters, PfComponent, PfEvent, PfEventKind};
pub use lifecycle::{validate_lifecycle, LifecycleSummary, LifecycleViolation};
pub use sampler::{SampleRow, Sampler};

/// Configuration for a telemetry collection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample each core's counters every this many committed
    /// instructions (clamped to ≥ 1).
    pub interval: u64,
    /// Lifecycle event buffer capacity per core. Once full, further
    /// events are counted (exactly, per component) but not stored, and
    /// [`CoreTrace::dropped`] records how many. `0` disables the event
    /// buffer entirely while keeping the counters.
    pub max_events_per_core: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            interval: 100_000,
            max_events_per_core: 262_144,
        }
    }
}

/// Per-core lifecycle event collector, owned by a `Core` while telemetry
/// is enabled.
///
/// `emit` is the only hot-path entry point: one counter increment plus a
/// bounds-checked push. The buffer is pre-allocated to its bound so
/// emission never reallocates.
#[derive(Debug)]
pub struct CoreTracer {
    events: Vec<PfEvent>,
    max_events: usize,
    dropped: u64,
    components: [ComponentCounters; PfComponent::COUNT],
}

impl CoreTracer {
    /// A tracer configured per `config`.
    pub fn new(config: &TelemetryConfig) -> CoreTracer {
        CoreTracer {
            // Cap the eager allocation; the buffer can still grow to the
            // configured bound if a run actually produces that many events.
            events: Vec::with_capacity(config.max_events_per_core.min(16_384)),
            max_events: config.max_events_per_core,
            dropped: 0,
            components: [ComponentCounters::default(); PfComponent::COUNT],
        }
    }

    /// Records one lifecycle transition.
    #[inline]
    pub fn emit(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        source: PrefetchSource,
        kind: PfEventKind,
    ) {
        let component = PfComponent::from_source(source);
        self.components[component.index()].bump(kind);
        if self.events.len() < self.max_events {
            self.events.push(PfEvent {
                cycle,
                line,
                component,
                kind,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Events buffered so far.
    pub fn events(&self) -> &[PfEvent] {
        &self.events
    }

    /// Exact counters for one component.
    pub fn counters(&self, component: PfComponent) -> &ComponentCounters {
        &self.components[component.index()]
    }

    /// Discards everything collected so far (end of warm-up).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        for c in &mut self.components {
            c.clear();
        }
    }

    /// Drains the collector into a [`CoreTrace`], leaving it empty but
    /// armed.
    pub fn take(&mut self) -> CoreTrace {
        let trace = CoreTrace {
            events: std::mem::take(&mut self.events),
            dropped: self.dropped,
            components: self.components,
        };
        self.dropped = 0;
        for c in &mut self.components {
            c.clear();
        }
        trace
    }
}

/// One core's collected lifecycle trace.
#[derive(Debug, Clone, Default)]
pub struct CoreTrace {
    /// Buffered events in emission order (a prefix of the full stream if
    /// `dropped > 0`).
    pub events: Vec<PfEvent>,
    /// Events that overflowed the buffer (still counted in
    /// `components`).
    pub dropped: u64,
    /// Exact per-component transition counts, indexed by
    /// [`PfComponent::index`].
    pub components: [ComponentCounters; PfComponent::COUNT],
}

impl CoreTrace {
    /// Exact counters for one component.
    pub fn counters(&self, component: PfComponent) -> &ComponentCounters {
        &self.components[component.index()]
    }
}

/// One prefetcher-zoo scheme's windowed counters on one core, as
/// collected from the zoo's shadow attribution at the end of a run.
///
/// `scheme` is the canonical spec string (e.g. `disc:ahead=2`), stable
/// across runs and usable as a join key in the bake-off report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZooSchemeRow {
    /// Core the scheme ran on.
    pub core: u32,
    /// Zoo slot of the scheme on its core.
    pub slot: u32,
    /// Canonical scheme spec string.
    pub scheme: String,
    /// Requests the scheme emitted (pre-filter, pre-queue).
    pub generated: u64,
    /// Requests accepted by the memory system.
    pub issued: u64,
    /// Prefetched lines installed in the L1I.
    pub filled: u64,
    /// Prefetched lines demand-referenced for the first time.
    pub useful: u64,
    /// Subset of `useful` still in flight at first demand reference.
    pub late: u64,
    /// Attributed lines evicted after demand use.
    pub evicted_used: u64,
    /// Attributed lines evicted without ever being used.
    pub evicted_unused: u64,
}

/// Everything telemetry collected over one measurement window.
#[derive(Debug, Clone, Default)]
pub struct TelemetryRun {
    /// Sampling cadence (committed instructions per core).
    pub interval: u64,
    /// Per-core lifecycle traces, indexed by core id.
    pub cores: Vec<CoreTrace>,
    /// Interval samples in record order (interleaved across cores).
    pub samples: Vec<SampleRow>,
    /// Per-scheme shadow-attribution rows, one per (core, zoo slot);
    /// empty unless the run used a prefetcher zoo.
    pub zoo: Vec<ZooSchemeRow>,
}

impl TelemetryRun {
    /// Per-component counters summed across cores.
    pub fn aggregate_components(&self) -> [ComponentCounters; PfComponent::COUNT] {
        let mut totals = [ComponentCounters::default(); PfComponent::COUNT];
        for core in &self.cores {
            for (total, part) in totals.iter_mut().zip(core.components.iter()) {
                total.merge(part);
            }
        }
        totals
    }

    /// Total buffered events across cores.
    pub fn total_events(&self) -> usize {
        self.cores.iter().map(|c| c.events.len()).sum()
    }

    /// Total events dropped to buffer bounds across cores.
    pub fn total_dropped(&self) -> u64 {
        self.cores.iter().map(|c| c.dropped).sum()
    }

    /// The most recent per-interval L1I miss rate (misses per 1 000
    /// instructions) across the last two samples of the most advanced
    /// core — the live figure the harness progress line shows. `None`
    /// until any core has two samples.
    pub fn last_interval_l1i_mpki(&self) -> Option<f64> {
        let last = self
            .samples
            .iter()
            .rev()
            .find(|r| self.samples.iter().filter(|p| p.core == r.core).count() >= 2)?;
        let prev = self
            .samples
            .iter()
            .rev()
            .find(|p| p.core == last.core && p.instrs < last.instrs)?;
        let instrs = last.instrs.saturating_sub(prev.instrs);
        if instrs == 0 {
            return None;
        }
        let misses = last.l1i_misses.saturating_sub(prev.l1i_misses);
        Some(misses as f64 * 1_000.0 / instrs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> PrefetchSource {
        PrefetchSource::Sequential
    }

    #[test]
    fn tracer_buffers_until_bound_then_counts() {
        let mut t = CoreTracer::new(&TelemetryConfig {
            interval: 1,
            max_events_per_core: 2,
        });
        for i in 0..5u64 {
            t.emit(i, LineAddr(i), seq(), PfEventKind::Issued);
        }
        assert_eq!(t.events().len(), 2);
        let trace = t.take();
        assert_eq!(trace.dropped, 3);
        assert_eq!(
            trace
                .counters(PfComponent::Sequential)
                .get(PfEventKind::Issued),
            5,
            "counters are exact despite the bounded buffer"
        );
        assert_eq!(t.events().len(), 0, "take drains");
    }

    #[test]
    fn clear_discards_warmup_state() {
        let mut t = CoreTracer::new(&TelemetryConfig::default());
        t.emit(1, LineAddr(1), seq(), PfEventKind::Issued);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.counters(PfComponent::Sequential).total(), 0);
    }

    #[test]
    fn run_aggregates_across_cores() {
        let mut a = CoreTracer::new(&TelemetryConfig::default());
        a.emit(1, LineAddr(1), seq(), PfEventKind::Issued);
        let mut b = CoreTracer::new(&TelemetryConfig::default());
        b.emit(2, LineAddr(2), PrefetchSource::Target, PfEventKind::Issued);
        b.emit(3, LineAddr(2), PrefetchSource::Target, PfEventKind::Fill);
        let run = TelemetryRun {
            interval: 100,
            cores: vec![a.take(), b.take()],
            ..TelemetryRun::default()
        };
        let totals = run.aggregate_components();
        assert_eq!(
            totals[PfComponent::Sequential.index()].get(PfEventKind::Issued),
            1
        );
        assert_eq!(
            totals[PfComponent::Target.index()].get(PfEventKind::Issued),
            1
        );
        assert_eq!(
            totals[PfComponent::Target.index()].get(PfEventKind::Fill),
            1
        );
        assert_eq!(run.total_events(), 3);
    }

    #[test]
    fn last_interval_mpki_diffs_adjacent_samples_of_one_core() {
        let mut run = TelemetryRun::default();
        assert_eq!(run.last_interval_l1i_mpki(), None);
        run.samples.push(SampleRow {
            core: 0,
            instrs: 1_000,
            l1i_misses: 50,
            ..SampleRow::default()
        });
        assert_eq!(
            run.last_interval_l1i_mpki(),
            None,
            "one sample is not a rate"
        );
        run.samples.push(SampleRow {
            core: 1,
            instrs: 1_000,
            l1i_misses: 10,
            ..SampleRow::default()
        });
        run.samples.push(SampleRow {
            core: 0,
            instrs: 2_000,
            l1i_misses: 80,
            ..SampleRow::default()
        });
        // Core 0: (80-50) misses over (2000-1000) instrs = 30/KI.
        assert_eq!(run.last_interval_l1i_mpki(), Some(30.0));
    }
}
