//! The prefetch lifecycle event model.
//!
//! Every instruction prefetch moves through a small state machine —
//! generated, filtered or queued, issued (or dropped at the tag probe),
//! filled, first-used (possibly late), and finally evicted used or unused —
//! and each transition is emitted as one [`PfEvent`] stamped with the
//! core-local cycle at which it happened. Events carry the prefetcher
//! *component* that generated the line ([`PfComponent`]), which is what
//! lets `sim_report` break accuracy, coverage and timeliness down into
//! sequential vs. discontinuity contributions the way the paper's
//! Section 5 discussion does.

use ipsim_core::PrefetchSource;
use ipsim_types::{Cycle, LineAddr};

/// The prefetcher component a line is attributed to.
///
/// This is [`PrefetchSource`] with the discontinuity table index erased:
/// telemetry classifies per *component*, not per table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfComponent {
    /// Next-N-line sequential prefetcher.
    Sequential,
    /// Discontinuity-table prefetcher.
    Discontinuity,
    /// Branch-target / wrong-path prefetcher.
    Target,
}

impl PfComponent {
    /// Number of components (array dimension for per-component counters).
    pub const COUNT: usize = 3;

    /// All components, in index order.
    pub const ALL: [PfComponent; PfComponent::COUNT] = [
        PfComponent::Sequential,
        PfComponent::Discontinuity,
        PfComponent::Target,
    ];

    /// Classifies a [`PrefetchSource`].
    #[inline]
    pub fn from_source(source: PrefetchSource) -> PfComponent {
        match source {
            PrefetchSource::Sequential => PfComponent::Sequential,
            PrefetchSource::Discontinuity { .. } => PfComponent::Discontinuity,
            PrefetchSource::Target => PfComponent::Target,
        }
    }

    /// Dense index (for `[T; PfComponent::COUNT]` tables).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PfComponent::Sequential => 0,
            PfComponent::Discontinuity => 1,
            PfComponent::Target => 2,
        }
    }

    /// Stable short name used in every sink format.
    pub fn name(self) -> &'static str {
        match self {
            PfComponent::Sequential => "seq",
            PfComponent::Discontinuity => "disc",
            PfComponent::Target => "target",
        }
    }

    /// Parses a [`PfComponent::name`] string.
    pub fn from_name(name: &str) -> Option<PfComponent> {
        PfComponent::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One lifecycle transition.
///
/// The variants are ordered roughly along the pipeline; see the module
/// docs of [`crate::lifecycle`] for the legal orderings per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfEventKind {
    /// The engine generated a request and it entered the prefetch queue.
    Queued,
    /// The engine generated a request but the recent-demand filter
    /// dropped it.
    Filtered,
    /// Popped from the queue but the line was already L1I-resident.
    DropResident,
    /// Popped from the queue but a fill for the line was already in
    /// flight.
    DropInflight,
    /// Issued to the memory system; an MSHR now tracks the fill.
    Issued,
    /// The fill completed and the line was installed in the L1I. Stamped
    /// with the fill's *ready* cycle, not the cycle the core noticed.
    Fill,
    /// A demand fetch hit the in-flight prefetch and stalled on its
    /// remaining latency (the "late but partially useful" case).
    DemandWait,
    /// First demand use of the prefetched line after an untroubled fill.
    FirstUse,
    /// First demand use of a line whose fill a demand fetch had to wait
    /// on ([`PfEventKind::DemandWait`] preceded it).
    FirstUseLate,
    /// Evicted from the L1I after being demand-used.
    EvictUsed,
    /// Evicted from the L1I without ever being used (a useless prefetch).
    EvictUnused,
    /// The line was installed into the L2 by the selective
    /// bypass-until-useful policy (on useful eviction or demand merge).
    L2Install,
}

impl PfEventKind {
    /// Number of kinds (array dimension for [`ComponentCounters`]).
    pub const COUNT: usize = 12;

    /// All kinds, in index order.
    pub const ALL: [PfEventKind; PfEventKind::COUNT] = [
        PfEventKind::Queued,
        PfEventKind::Filtered,
        PfEventKind::DropResident,
        PfEventKind::DropInflight,
        PfEventKind::Issued,
        PfEventKind::Fill,
        PfEventKind::DemandWait,
        PfEventKind::FirstUse,
        PfEventKind::FirstUseLate,
        PfEventKind::EvictUsed,
        PfEventKind::EvictUnused,
        PfEventKind::L2Install,
    ];

    /// Dense index (for `[u64; PfEventKind::COUNT]` tables).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PfEventKind::Queued => 0,
            PfEventKind::Filtered => 1,
            PfEventKind::DropResident => 2,
            PfEventKind::DropInflight => 3,
            PfEventKind::Issued => 4,
            PfEventKind::Fill => 5,
            PfEventKind::DemandWait => 6,
            PfEventKind::FirstUse => 7,
            PfEventKind::FirstUseLate => 8,
            PfEventKind::EvictUsed => 9,
            PfEventKind::EvictUnused => 10,
            PfEventKind::L2Install => 11,
        }
    }

    /// Stable snake_case name used in every sink format.
    pub fn name(self) -> &'static str {
        match self {
            PfEventKind::Queued => "queued",
            PfEventKind::Filtered => "filtered",
            PfEventKind::DropResident => "drop_resident",
            PfEventKind::DropInflight => "drop_inflight",
            PfEventKind::Issued => "issued",
            PfEventKind::Fill => "fill",
            PfEventKind::DemandWait => "demand_wait",
            PfEventKind::FirstUse => "first_use",
            PfEventKind::FirstUseLate => "first_use_late",
            PfEventKind::EvictUsed => "evict_used",
            PfEventKind::EvictUnused => "evict_unused",
            PfEventKind::L2Install => "l2_install",
        }
    }

    /// Parses a [`PfEventKind::name`] string.
    pub fn from_name(name: &str) -> Option<PfEventKind> {
        PfEventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One timestamped lifecycle event for one line on one core.
///
/// The core id is implicit: events are stored per core in
/// [`crate::CoreTrace`] and re-attached by the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfEvent {
    /// Core-local cycle of the transition.
    pub cycle: Cycle,
    /// The prefetched line.
    pub line: LineAddr,
    /// Component that generated the prefetch.
    pub component: PfComponent,
    /// Which transition happened.
    pub kind: PfEventKind,
}

/// Exact per-component event counts, maintained independently of the
/// bounded event buffer: the buffer may drop events once full, the
/// counters never do, so accuracy/coverage/timeliness ratios derived from
/// them are exact even on runs that overflow the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCounters {
    counts: [u64; PfEventKind::COUNT],
}

impl ComponentCounters {
    /// Count for one event kind.
    #[inline]
    pub fn get(&self, kind: PfEventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Increments the count for `kind`.
    #[inline]
    pub fn bump(&mut self, kind: PfEventKind) {
        self.counts[kind.index()] += 1;
    }

    /// Adds `n` to the count for `kind` (artifact deserialisation).
    #[inline]
    pub fn bump_by(&mut self, kind: PfEventKind, n: u64) {
        self.counts[kind.index()] += n;
    }

    /// Adds every count from `other` (cross-core aggregation).
    pub fn merge(&mut self, other: &ComponentCounters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Resets every count to zero.
    pub fn clear(&mut self) {
        self.counts = [0; PfEventKind::COUNT];
    }

    /// Total first uses (timely + late).
    pub fn first_uses(&self) -> u64 {
        self.get(PfEventKind::FirstUse) + self.get(PfEventKind::FirstUseLate)
    }

    /// Sum across all kinds (diagnostics).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_consistent() {
        for (i, c) in PfComponent::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(PfComponent::from_name(c.name()), Some(c));
        }
        for (i, k) in PfEventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(PfEventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(PfComponent::from_name("bogus"), None);
        assert_eq!(PfEventKind::from_name("bogus"), None);
    }

    #[test]
    fn component_classification() {
        assert_eq!(
            PfComponent::from_source(PrefetchSource::Sequential),
            PfComponent::Sequential
        );
        assert_eq!(
            PfComponent::from_source(PrefetchSource::Discontinuity { table_index: 7 }),
            PfComponent::Discontinuity
        );
        assert_eq!(
            PfComponent::from_source(PrefetchSource::Target),
            PfComponent::Target
        );
    }

    #[test]
    fn counters_bump_merge_and_summarise() {
        let mut a = ComponentCounters::default();
        a.bump(PfEventKind::Issued);
        a.bump(PfEventKind::FirstUse);
        a.bump(PfEventKind::FirstUseLate);
        let mut b = ComponentCounters::default();
        b.bump(PfEventKind::Issued);
        b.merge(&a);
        assert_eq!(b.get(PfEventKind::Issued), 2);
        assert_eq!(b.first_uses(), 2);
        assert_eq!(b.total(), 4);
        b.clear();
        assert_eq!(b.total(), 0);
    }
}
