//! Artifact sinks: JSONL events, Chrome `trace_event` timeline, and TSV
//! dumps for the time series and the per-component summary.
//!
//! Every writer has a matching reader/validator built on the in-crate
//! JSON parser, so the CI smoke job can prove an artifact is well-formed
//! using the exporter's own definition of the format rather than eyeball
//! inspection. Line addresses are always encoded as `"0x…"` hex strings —
//! JSON numbers are doubles and a 64-bit line address does not survive
//! them.

use std::io::{self, Write};

use ipsim_types::LineAddr;

use crate::event::{ComponentCounters, PfComponent, PfEvent, PfEventKind};
use crate::json::{self, Json};
use crate::sampler::SampleRow;
use crate::{TelemetryRun, ZooSchemeRow};

/// Schema tag written into (and required from) the JSONL header line.
pub const JSONL_SCHEMA: &str = "ipsim-telemetry-v1";

/// Writes the lifecycle event trace as JSON Lines: one header object,
/// then one object per event in per-core emission order.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_events_jsonl<W: Write>(w: &mut W, run: &TelemetryRun) -> io::Result<()> {
    let dropped: Vec<String> = run.cores.iter().map(|c| c.dropped.to_string()).collect();
    writeln!(
        w,
        r#"{{"schema":"{}","interval":{},"cores":{},"dropped":[{}]}}"#,
        JSONL_SCHEMA,
        run.interval,
        run.cores.len(),
        dropped.join(",")
    )?;
    for (core, trace) in run.cores.iter().enumerate() {
        for ev in &trace.events {
            writeln!(
                w,
                r#"{{"core":{},"cycle":{},"line":"{:#x}","component":"{}","kind":"{}"}}"#,
                core,
                ev.cycle,
                ev.line.0,
                ev.component.name(),
                ev.kind.name()
            )?;
        }
    }
    Ok(())
}

/// A parsed JSONL artifact: the header fields plus events regrouped per
/// core, ready for lifecycle validation.
#[derive(Debug)]
pub struct ParsedEvents {
    /// Sampling interval recorded in the header.
    pub interval: u64,
    /// Events dropped per core (buffer overflow), from the header.
    pub dropped: Vec<u64>,
    /// Events per core, in file order.
    pub per_core: Vec<Vec<PfEvent>>,
}

impl ParsedEvents {
    /// Total events across cores.
    pub fn total_events(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }
}

/// Parses and validates a JSONL artifact produced by
/// [`write_events_jsonl`]: header schema, field presence and types, known
/// component/kind names, in-range core ids.
///
/// # Errors
///
/// Returns a message naming the offending line (1-based).
pub fn parse_events_jsonl(text: &str) -> Result<ParsedEvents, String> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or("empty JSONL artifact")?;
    let header = json::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("line 1: missing schema")?;
    if schema != JSONL_SCHEMA {
        return Err(format!("line 1: schema {schema:?}, want {JSONL_SCHEMA:?}"));
    }
    let interval = header
        .get("interval")
        .and_then(Json::as_num)
        .ok_or("line 1: missing interval")? as u64;
    let n_cores = header
        .get("cores")
        .and_then(Json::as_num)
        .ok_or("line 1: missing cores")? as usize;
    let dropped: Vec<u64> = header
        .get("dropped")
        .and_then(Json::as_arr)
        .ok_or("line 1: missing dropped")?
        .iter()
        .map(|v| v.as_num().map(|n| n as u64))
        .collect::<Option<_>>()
        .ok_or("line 1: non-numeric dropped entry")?;
    if dropped.len() != n_cores {
        return Err(format!(
            "line 1: dropped has {} entries for {} cores",
            dropped.len(),
            n_cores
        ));
    }

    let mut per_core: Vec<Vec<PfEvent>> = vec![Vec::new(); n_cores];
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let doc = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let core = doc
            .get("core")
            .and_then(Json::as_num)
            .ok_or(format!("line {lineno}: missing core"))? as usize;
        if core >= n_cores {
            return Err(format!("line {lineno}: core {core} out of range"));
        }
        let cycle = doc
            .get("cycle")
            .and_then(Json::as_num)
            .ok_or(format!("line {lineno}: missing cycle"))? as u64;
        let line_addr = doc
            .get("line")
            .and_then(Json::as_str)
            .ok_or(format!("line {lineno}: missing line"))?;
        let line_addr = line_addr
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or(format!("line {lineno}: line is not a hex string"))?;
        let component = doc
            .get("component")
            .and_then(Json::as_str)
            .and_then(PfComponent::from_name)
            .ok_or(format!("line {lineno}: unknown component"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .and_then(PfEventKind::from_name)
            .ok_or(format!("line {lineno}: unknown kind"))?;
        per_core[core].push(PfEvent {
            cycle,
            line: LineAddr(line_addr),
            component,
            kind,
        });
    }
    Ok(ParsedEvents {
        interval,
        dropped,
        per_core,
    })
}

/// Writes the run as a Chrome `trace_event` JSON document (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). Each core becomes a
/// process: lifecycle events are instants on its timeline (`ph:"i"`,
/// `ts` = core cycle) and sample rows become counter tracks (`ph:"C"`).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(w: &mut W, run: &TelemetryRun) -> io::Result<()> {
    write!(w, r#"{{"traceEvents":["#)?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if !*first {
            write!(w, ",")?;
        }
        *first = false;
        Ok(())
    };
    for (core, trace) in run.cores.iter().enumerate() {
        let pid = core + 1;
        sep(w, &mut first)?;
        write!(
            w,
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"core{core}"}}}}"#
        )?;
        for ev in &trace.events {
            sep(w, &mut first)?;
            write!(
                w,
                r#"{{"name":"{}:{}","cat":"pf","ph":"i","s":"t","ts":{},"pid":{pid},"tid":0,"args":{{"line":"{:#x}"}}}}"#,
                ev.component.name(),
                ev.kind.name(),
                ev.cycle,
                ev.line.0
            )?;
        }
    }
    for row in &run.samples {
        let pid = row.core as usize + 1;
        sep(w, &mut first)?;
        write!(
            w,
            r#"{{"name":"l1i_misses","ph":"C","ts":{},"pid":{pid},"tid":0,"args":{{"cum":{}}}}}"#,
            row.cycles, row.l1i_misses
        )?;
        sep(w, &mut first)?;
        write!(
            w,
            r#"{{"name":"pf_queue","ph":"C","ts":{},"pid":{pid},"tid":0,"args":{{"depth":{}}}}}"#,
            row.cycles, row.pf_queue
        )?;
    }
    write!(w, r#"],"displayTimeUnit":"ns"}}"#)?;
    Ok(())
}

/// Parses a Chrome trace document and checks the invariants
/// [`write_chrome_trace`] guarantees: a `traceEvents` array whose every
/// element has a string `name`, a known `ph`, a numeric `pid`, and — for
/// instant and counter events — a numeric `ts` plus an object `args`.
/// Complete events (`ph:"X"`, written by the ipsim-obs span exporter
/// into the same envelope) additionally need a numeric `dur`.
///
/// Returns the number of trace events on success.
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} ({name}): missing ph"))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or(format!("event {i} ({name}): missing pid"))?;
        match ph {
            "M" => {}
            "i" | "C" | "X" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} ({name}): missing ts"))?;
                if ph == "X" {
                    ev.get("dur")
                        .and_then(Json::as_num)
                        .ok_or(format!("event {i} ({name}): missing dur"))?;
                }
                if !matches!(ev.get("args"), Some(Json::Obj(_))) {
                    return Err(format!("event {i} ({name}): missing args object"));
                }
            }
            other => return Err(format!("event {i} ({name}): unexpected ph {other:?}")),
        }
    }
    Ok(events.len())
}

/// Writes the interval time series as TSV: a `#`-prefixed header naming
/// [`SampleRow::COLUMNS`], then one row per sample.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_series_tsv<W: Write>(w: &mut W, samples: &[SampleRow]) -> io::Result<()> {
    writeln!(w, "# {}", SampleRow::COLUMNS.join("\t"))?;
    for row in samples {
        let values: Vec<String> = row.values().iter().map(u64::to_string).collect();
        writeln!(w, "{}", values.join("\t"))?;
    }
    Ok(())
}

/// Parses a TSV time series written by [`write_series_tsv`].
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_series_tsv(text: &str) -> Result<Vec<SampleRow>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty series artifact")?;
    let want = format!("# {}", SampleRow::COLUMNS.join("\t"));
    if header != want {
        return Err(format!("bad series header {header:?}"));
    }
    let mut rows = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<u64> = line
            .split('\t')
            .map(|f| {
                f.parse::<u64>()
                    .map_err(|_| format!("line {}: bad field {f:?}", idx + 2))
            })
            .collect::<Result<_, _>>()?;
        if fields.len() != SampleRow::COLUMNS.len() {
            return Err(format!(
                "line {}: {} fields, want {}",
                idx + 2,
                fields.len(),
                SampleRow::COLUMNS.len()
            ));
        }
        rows.push(SampleRow {
            core: fields[0] as u32,
            instrs: fields[1],
            cycles: fields[2],
            line_fetches: fields[3],
            l1i_misses: fields[4],
            l1d_misses: fields[5],
            pf_issued: fields[6],
            pf_useful: fields[7],
            pf_late: fields[8],
            pf_queue: fields[9],
            l2_instr_misses: fields[10],
            l2_prefetch_misses: fields[11],
        });
    }
    Ok(rows)
}

/// Writes the exact per-component event counts aggregated across cores,
/// one TSV row per component, one column per [`PfEventKind`]. This is
/// the compact artifact `sim_report` aggregates.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_component_summary_tsv<W: Write>(w: &mut W, run: &TelemetryRun) -> io::Result<()> {
    let names: Vec<&str> = PfEventKind::ALL.iter().map(|k| k.name()).collect();
    writeln!(w, "# component\t{}", names.join("\t"))?;
    let totals = run.aggregate_components();
    for component in PfComponent::ALL {
        let counts: Vec<String> = PfEventKind::ALL
            .iter()
            .map(|&k| totals[component.index()].get(k).to_string())
            .collect();
        writeln!(w, "{}\t{}", component.name(), counts.join("\t"))?;
    }
    Ok(())
}

/// Parses a per-component summary written by
/// [`write_component_summary_tsv`].
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_component_summary_tsv(
    text: &str,
) -> Result<Vec<(PfComponent, ComponentCounters)>, String> {
    let mut lines = text.lines();
    let names: Vec<&str> = PfEventKind::ALL.iter().map(|k| k.name()).collect();
    let want = format!("# component\t{}", names.join("\t"));
    let header = lines.next().ok_or("empty summary artifact")?;
    if header != want {
        return Err(format!("bad summary header {header:?}"));
    }
    let mut out = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let component = fields
            .next()
            .and_then(PfComponent::from_name)
            .ok_or(format!("line {}: unknown component", idx + 2))?;
        let mut counters = ComponentCounters::default();
        for kind in PfEventKind::ALL {
            let field = fields
                .next()
                .ok_or(format!("line {}: truncated row", idx + 2))?;
            let n: u64 = field
                .parse()
                .map_err(|_| format!("line {}: bad count {field:?}", idx + 2))?;
            counters.bump_by(kind, n);
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing fields", idx + 2));
        }
        out.push((component, counters));
    }
    Ok(out)
}

/// Column names of the zoo TSV artifact, in field order.
pub const ZOO_COLUMNS: [&str; 10] = [
    "core",
    "slot",
    "scheme",
    "generated",
    "issued",
    "filled",
    "useful",
    "late",
    "evicted_used",
    "evicted_unused",
];

/// Writes the per-scheme shadow-attribution rows as TSV: a `#`-prefixed
/// header naming [`ZOO_COLUMNS`], then one row per (core, zoo slot).
/// This is the artifact `sim_report --bakeoff` joins across runs.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_zoo_tsv<W: Write>(w: &mut W, rows: &[ZooSchemeRow]) -> io::Result<()> {
    writeln!(w, "# {}", ZOO_COLUMNS.join("\t"))?;
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.core,
            r.slot,
            r.scheme,
            r.generated,
            r.issued,
            r.filled,
            r.useful,
            r.late,
            r.evicted_used,
            r.evicted_unused
        )?;
    }
    Ok(())
}

/// Parses a zoo TSV artifact written by [`write_zoo_tsv`].
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_zoo_tsv(text: &str) -> Result<Vec<ZooSchemeRow>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty zoo artifact")?;
    let want = format!("# {}", ZOO_COLUMNS.join("\t"));
    if header != want {
        return Err(format!("bad zoo header {header:?}"));
    }
    let mut rows = Vec::new();
    for (idx, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 2;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != ZOO_COLUMNS.len() {
            return Err(format!(
                "line {lineno}: {} fields, want {}",
                fields.len(),
                ZOO_COLUMNS.len()
            ));
        }
        let num = |i: usize| -> Result<u64, String> {
            fields[i]
                .parse::<u64>()
                .map_err(|_| format!("line {lineno}: bad field {:?}", fields[i]))
        };
        if fields[2].is_empty() {
            return Err(format!("line {lineno}: empty scheme"));
        }
        rows.push(ZooSchemeRow {
            core: num(0)? as u32,
            slot: num(1)? as u32,
            scheme: fields[2].to_string(),
            generated: num(3)?,
            issued: num(4)?,
            filled: num(5)?,
            useful: num(6)?,
            late: num(7)?,
            evicted_used: num(8)?,
            evicted_unused: num(9)?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreTrace, TelemetryRun};

    fn sample_run() -> TelemetryRun {
        let mut c0 = CoreTrace::default();
        let mut push = |cycle, line, kind| {
            let ev = PfEvent {
                cycle,
                line: LineAddr(line),
                component: PfComponent::Sequential,
                kind,
            };
            c0.events.push(ev);
            c0.components[ev.component.index()].bump(kind);
        };
        push(5, 0x1f80, PfEventKind::Queued);
        push(6, 0x1f80, PfEventKind::Issued);
        push(90, 0x1f80, PfEventKind::Fill);
        push(120, 0x1f80, PfEventKind::FirstUse);
        TelemetryRun {
            interval: 1_000,
            cores: vec![c0, CoreTrace::default()],
            samples: vec![
                SampleRow {
                    core: 0,
                    instrs: 1_000,
                    cycles: 2_400,
                    l1i_misses: 31,
                    pf_queue: 3,
                    ..SampleRow::default()
                },
                SampleRow {
                    core: 1,
                    instrs: 1_008,
                    cycles: 2_501,
                    l1i_misses: 44,
                    ..SampleRow::default()
                },
            ],
            zoo: vec![
                ZooSchemeRow {
                    core: 0,
                    slot: 0,
                    scheme: "nl".to_string(),
                    generated: 10,
                    issued: 8,
                    filled: 7,
                    useful: 5,
                    late: 2,
                    evicted_used: 4,
                    evicted_unused: 1,
                },
                ZooSchemeRow {
                    core: 0,
                    slot: 1,
                    scheme: "disc:ahead=2".to_string(),
                    generated: 6,
                    issued: 6,
                    ..ZooSchemeRow::default()
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_through_its_validator() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &run).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_events_jsonl(&text).expect("valid jsonl");
        assert_eq!(parsed.interval, 1_000);
        assert_eq!(parsed.per_core.len(), 2);
        assert_eq!(parsed.per_core[0], run.cores[0].events);
        assert!(parsed.per_core[1].is_empty());
        assert_eq!(parsed.dropped, vec![0, 0]);
    }

    #[test]
    fn jsonl_validator_rejects_corruption() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &run).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Truncate mid-line.
        assert!(parse_events_jsonl(&text[..text.len() - 4]).is_err());
        // Corrupt the schema.
        assert!(parse_events_jsonl(&text.replace(JSONL_SCHEMA, "bogus")).is_err());
        // Corrupt a kind name.
        assert!(parse_events_jsonl(&text.replace("first_use", "fist_use")).is_err());
    }

    #[test]
    fn chrome_trace_passes_its_own_validator() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &run).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let n = validate_chrome_trace(&text).expect("valid chrome trace");
        // 2 process metadata + 4 instants + 2 counters per sample row.
        assert_eq!(n, 2 + 4 + 2 * 2);
        assert!(validate_chrome_trace(&text[..text.len() - 1]).is_err());
    }

    #[test]
    fn chrome_validator_accepts_complete_events() {
        // The shape the ipsim-obs span exporter writes (ph:"X").
        let ok = r#"{"traceEvents":[{"name":"serve.request","cat":"obs","ph":"X","ts":12,"dur":340,"pid":1,"tid":2,"args":{"id":1,"parent":0}}],"displayTimeUnit":"ns"}"#;
        assert_eq!(validate_chrome_trace(ok).unwrap(), 1);
        let no_dur = r#"{"traceEvents":[{"name":"s","ph":"X","ts":1,"pid":1,"args":{}}]}"#;
        assert!(validate_chrome_trace(no_dur).unwrap_err().contains("dur"));
        let no_ts = r#"{"traceEvents":[{"name":"s","ph":"X","dur":1,"pid":1,"args":{}}]}"#;
        assert!(validate_chrome_trace(no_ts).unwrap_err().contains("ts"));
    }

    #[test]
    fn series_tsv_round_trips() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_series_tsv(&mut buf, &run.samples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_series_tsv(&text).unwrap(), run.samples);
        assert!(parse_series_tsv("# wrong\n").is_err());
    }

    #[test]
    fn zoo_tsv_round_trips() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_zoo_tsv(&mut buf, &run.zoo).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_zoo_tsv(&text).unwrap(), run.zoo);
        assert!(parse_zoo_tsv("# wrong\n").is_err());
        assert!(
            parse_zoo_tsv(&text.replace("disc:ahead=2", "")).is_err(),
            "empty scheme field rejected"
        );
        assert!(parse_zoo_tsv(&text.replace('7', "x")).is_err());
    }

    #[test]
    fn component_summary_round_trips() {
        let run = sample_run();
        let mut buf = Vec::new();
        write_component_summary_tsv(&mut buf, &run).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rows = parse_component_summary_tsv(&text).unwrap();
        assert_eq!(rows.len(), PfComponent::COUNT);
        let (component, counters) = rows[0];
        assert_eq!(component, PfComponent::Sequential);
        assert_eq!(counters.get(PfEventKind::Issued), 1);
        assert_eq!(counters.get(PfEventKind::FirstUse), 1);
        assert_eq!(rows[1].1.total(), 0);
    }
}
