//! Validation of per-line lifecycle orderings.
//!
//! A prefetched line on one core moves through a small state machine:
//!
//! ```text
//!            issued            fill                first_use[_late]
//!   Absent ────────► InFlight ──────► Resident{unused} ───────────► Resident{used}
//!     ▲                 │demand_wait        │evict_unused                  │evict_used
//!     │                 ▼(stays InFlight)   ▼                              ▼
//!     └─────────────────────────────────── Absent ◄────────────────────────┘
//! ```
//!
//! `queued` / `filtered` / `drop_resident` / `drop_inflight` / `l2_install`
//! are state-neutral annotations (a drop may refer to a line that was
//! demand-fetched rather than prefetched, so they carry no transition).
//!
//! The validator replays a per-core event stream against this machine and
//! reports the first violation: issue-while-in-flight, double fill,
//! use-after-evict, double first-use, evict-kind mismatch, and so on. Two
//! sources of benign incompleteness are tolerated by construction:
//!
//! * **mid-stream starts** — measurement begins after warm-up, so the
//!   first event observed for a line may be any transition; an unknown
//!   line adopts the state that transition implies;
//! * **truncated tails** — the event buffer is bounded and drops from the
//!   end, and a prefix of a valid stream is itself valid.

use std::collections::HashMap;

use ipsim_types::LineAddr;

use crate::event::{PfEvent, PfEventKind};

/// Per-line state tracked by the validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Not resident and no fill in flight.
    Absent,
    /// A prefetch fill is in flight.
    InFlight,
    /// Resident in the L1I; `used` once demand-referenced.
    Resident { used: bool },
}

/// Counts of completed transitions, returned on success.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleSummary {
    /// Events replayed.
    pub events: usize,
    /// Distinct lines observed.
    pub lines: usize,
    /// `issued` transitions accepted.
    pub issues: u64,
    /// `fill` transitions accepted.
    pub fills: u64,
    /// First uses (timely + late) accepted.
    pub first_uses: u64,
    /// Evictions (used + unused) accepted.
    pub evictions: u64,
}

/// A lifecycle violation: the offending event, its position in the
/// stream, and a description of why it was illegal in the line's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleViolation {
    /// Index of the offending event in the validated stream.
    pub index: usize,
    /// The offending event.
    pub event: PfEvent,
    /// Human-readable description of the violated rule.
    pub reason: String,
}

impl std::fmt::Display for LifecycleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event {} ({} line {:#x} at cycle {}): {}",
            self.index,
            self.event.kind.name(),
            self.event.line.0,
            self.event.cycle,
            self.reason
        )
    }
}

/// Replays one core's event stream against the lifecycle state machine.
///
/// # Errors
///
/// Returns the first [`LifecycleViolation`] encountered.
pub fn validate_lifecycle(events: &[PfEvent]) -> Result<LifecycleSummary, LifecycleViolation> {
    let mut states: HashMap<LineAddr, LineState> = HashMap::new();
    let mut summary = LifecycleSummary::default();
    for (index, &event) in events.iter().enumerate() {
        summary.events += 1;
        let known = states.get(&event.line).copied();
        let fail = |reason: &str| LifecycleViolation {
            index,
            event,
            reason: reason.to_string(),
        };
        let next = match event.kind {
            // State-neutral annotations.
            PfEventKind::Queued
            | PfEventKind::Filtered
            | PfEventKind::DropResident
            | PfEventKind::DropInflight
            | PfEventKind::L2Install => known,
            PfEventKind::Issued => {
                summary.issues += 1;
                match known {
                    Some(LineState::InFlight) => {
                        return Err(fail("issued while a fill was already in flight"));
                    }
                    Some(LineState::Resident { .. }) => {
                        return Err(fail("issued while the line was resident"));
                    }
                    Some(LineState::Absent) | None => Some(LineState::InFlight),
                }
            }
            PfEventKind::DemandWait => match known {
                Some(LineState::Absent) => {
                    return Err(fail("demand merged into a fill that was never issued"));
                }
                Some(LineState::Resident { .. }) => {
                    return Err(fail("demand merged into an already-filled line"));
                }
                Some(LineState::InFlight) | None => Some(LineState::InFlight),
            },
            PfEventKind::Fill => {
                summary.fills += 1;
                match known {
                    Some(LineState::Resident { .. }) => {
                        return Err(fail("double fill: the line was already resident"));
                    }
                    Some(LineState::Absent) => {
                        return Err(fail("fill completed for a line with no fill in flight"));
                    }
                    Some(LineState::InFlight) | None => Some(LineState::Resident { used: false }),
                }
            }
            PfEventKind::FirstUse | PfEventKind::FirstUseLate => {
                summary.first_uses += 1;
                match known {
                    Some(LineState::Absent) => {
                        return Err(fail("use after evict"));
                    }
                    Some(LineState::InFlight) => {
                        return Err(fail("first use before the fill completed"));
                    }
                    Some(LineState::Resident { used: true }) => {
                        return Err(fail("double first use"));
                    }
                    Some(LineState::Resident { used: false }) | None => {
                        Some(LineState::Resident { used: true })
                    }
                }
            }
            PfEventKind::EvictUsed | PfEventKind::EvictUnused => {
                summary.evictions += 1;
                let want_used = event.kind == PfEventKind::EvictUsed;
                match known {
                    Some(LineState::Absent) => {
                        return Err(fail("double evict: the line was already absent"));
                    }
                    Some(LineState::InFlight) => {
                        return Err(fail("evicted while the fill was still in flight"));
                    }
                    Some(LineState::Resident { used }) if used != want_used => {
                        return Err(fail(if want_used {
                            "evict_used for a line never demand-referenced"
                        } else {
                            "evict_unused for a line that was demand-referenced"
                        }));
                    }
                    Some(LineState::Resident { .. }) | None => Some(LineState::Absent),
                }
            }
        };
        if let Some(state) = next {
            states.insert(event.line, state);
        }
    }
    summary.lines = states.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PfComponent;

    fn ev(cycle: u64, line: u64, kind: PfEventKind) -> PfEvent {
        PfEvent {
            cycle,
            line: LineAddr(line),
            component: PfComponent::Sequential,
            kind,
        }
    }

    #[test]
    fn full_happy_lifecycle_validates() {
        let events = [
            ev(1, 10, PfEventKind::Queued),
            ev(2, 10, PfEventKind::Issued),
            ev(9, 10, PfEventKind::Fill),
            ev(12, 10, PfEventKind::FirstUse),
            ev(40, 10, PfEventKind::L2Install),
            ev(40, 10, PfEventKind::EvictUsed),
            // Re-prefetch of the same line after eviction is legal.
            ev(50, 10, PfEventKind::Issued),
            ev(58, 10, PfEventKind::Fill),
            ev(90, 10, PfEventKind::EvictUnused),
        ];
        let s = validate_lifecycle(&events).expect("valid stream");
        assert_eq!(s.issues, 2);
        assert_eq!(s.fills, 2);
        assert_eq!(s.first_uses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.lines, 1);
    }

    #[test]
    fn late_lifecycle_with_demand_wait() {
        let events = [
            ev(2, 10, PfEventKind::Issued),
            ev(5, 10, PfEventKind::DemandWait),
            ev(9, 10, PfEventKind::Fill),
            ev(9, 10, PfEventKind::FirstUseLate),
        ];
        assert!(validate_lifecycle(&events).is_ok());
    }

    #[test]
    fn mid_stream_start_is_tolerated() {
        // First event for the line is a fill (issued during warm-up).
        let events = [
            ev(9, 10, PfEventKind::Fill),
            ev(12, 10, PfEventKind::FirstUse),
            // First event for line 20 is an eviction.
            ev(13, 20, PfEventKind::EvictUnused),
        ];
        assert!(validate_lifecycle(&events).is_ok());
    }

    #[test]
    fn use_after_evict_is_rejected() {
        let events = [
            ev(1, 10, PfEventKind::Issued),
            ev(5, 10, PfEventKind::Fill),
            ev(6, 10, PfEventKind::EvictUnused),
            ev(7, 10, PfEventKind::FirstUse),
        ];
        let err = validate_lifecycle(&events).unwrap_err();
        assert_eq!(err.index, 3);
        assert!(err.reason.contains("use after evict"), "{err}");
    }

    #[test]
    fn double_fill_is_rejected() {
        let events = [
            ev(1, 10, PfEventKind::Issued),
            ev(5, 10, PfEventKind::Fill),
            ev(6, 10, PfEventKind::Fill),
        ];
        let err = validate_lifecycle(&events).unwrap_err();
        assert!(err.reason.contains("double fill"), "{err}");
    }

    #[test]
    fn double_issue_and_evict_mismatch_are_rejected() {
        let double_issue = [
            ev(1, 10, PfEventKind::Issued),
            ev(2, 10, PfEventKind::Issued),
        ];
        assert!(validate_lifecycle(&double_issue).is_err());

        let mismatch = [
            ev(1, 10, PfEventKind::Issued),
            ev(5, 10, PfEventKind::Fill),
            ev(9, 10, PfEventKind::EvictUsed),
        ];
        let err = validate_lifecycle(&mismatch).unwrap_err();
        assert!(err.reason.contains("never demand-referenced"), "{err}");
    }

    #[test]
    fn truncated_prefix_of_valid_stream_is_valid() {
        let events = [
            ev(1, 10, PfEventKind::Issued),
            ev(5, 10, PfEventKind::Fill),
            ev(6, 10, PfEventKind::FirstUse),
        ];
        for n in 0..=events.len() {
            assert!(validate_lifecycle(&events[..n]).is_ok(), "prefix {n}");
        }
    }
}
