//! A minimal interrupt flag for graceful shutdown.
//!
//! The workspace has no registry dependencies, so instead of the `ctrlc`
//! or `signal-hook` crates this module declares the two libc functions it
//! needs (`signal`, `raise`) directly — std already links libc on every
//! supported platform. The handler does the only async-signal-safe thing
//! possible: it sets an atomic flag that long-running loops poll at safe
//! points (between runs, between accepted connections).
//!
//! Semantics:
//!
//! * [`install`] registers the handler for `SIGINT` and `SIGTERM`.
//! * The **first** signal sets the flag ([`triggered`] becomes true);
//!   work in flight is expected to finish and flush before exiting with
//!   code 130.
//! * A **second** signal restores the default disposition and re-raises
//!   it, so an impatient second Ctrl-C still kills the process
//!   immediately.
//!
//! This is the only crate in the workspace that uses `unsafe`; the whole
//! surface is the two `extern` declarations below.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX `SIGTERM` (polite kill).
pub const SIGTERM: i32 = 15;

/// POSIX `SIG_DFL`: the default disposition, represented as handler 0.
const SIG_DFL: usize = 0;

static TRIGGERED: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_signal(signum: i32) {
    if TRIGGERED.swap(true, Ordering::SeqCst) {
        // Second signal: give up on graceful shutdown. Restoring the
        // default disposition and re-raising terminates the process with
        // the conventional "killed by signal" status.
        unsafe {
            signal(signum, SIG_DFL);
            raise(signum);
        }
    }
}

/// Installs the graceful-shutdown handler for `SIGINT` and `SIGTERM`.
/// Idempotent; call once near the top of `main`.
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Whether a shutdown signal has arrived. Poll this at safe points; when
/// it turns true, finish the unit of work in flight, flush state, and
/// exit (conventionally with code 130).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Clears the flag. Intended for tests (and for daemons that survive a
/// drain and want to arm the handler again).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

/// Sends `signum` to the current process — the test hook for exercising
/// the handler without an external `kill`.
pub fn raise_self(signum: i32) {
    unsafe {
        raise(signum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercises the whole lifecycle: the flag flips on the
    /// first signal and `reset` clears it. (Separate tests would race on
    /// the global flag; the second-signal kill path is exercised by the
    /// serve smoke script, not here, since it terminates the process.)
    #[test]
    fn flag_lifecycle() {
        install();
        assert!(!triggered());
        raise_self(SIGINT);
        assert!(triggered());
        reset();
        assert!(!triggered());
        // Re-arm for any test binary code that runs after this.
        install();
    }
}
