//! Property tests for the trace codec and file format.
//!
//! Three properties, each over *arbitrary* op sequences (not just
//! walker-shaped ones — the writer's resync path must make any sequence
//! encodable):
//!
//! 1. encode → decode is the identity,
//! 2. every strict prefix of a trace file is rejected (truncation is
//!    always detected),
//! 3. no single bit flip can make a trace decode to a *different* op
//!    sequence — corruption is either detected or harmless to content
//!    (in practice: always detected, since every byte is CRC-covered).
//!
//! PCs and addresses stay below `1 << 60` because `Addr::offset` asserts
//! against overflow in debug builds; real streams live far below that.

use std::io::Cursor;

use ipsim_stream::{TraceReader, TraceWriter};
use ipsim_types::instr::{CtiClass, OpKind, TraceOp};
use ipsim_types::Addr;
use proptest::prelude::*;

const ADDR_CEIL: u64 = 1 << 60;

/// Builds one op from raw generated parts. `kind_sel` picks the op kind;
/// CTI classes are spread across selectors 3..9.
fn make_op(pc: u64, kind_sel: u32, addr: u64, taken: bool) -> TraceOp {
    let kind = match kind_sel {
        0 => OpKind::Other,
        1 => OpKind::Load { addr: Addr(addr) },
        2 => OpKind::Store { addr: Addr(addr) },
        n => OpKind::Cti {
            class: match n {
                3 => CtiClass::CondBranch,
                4 => CtiClass::UncondBranch,
                5 => CtiClass::Call,
                6 => CtiClass::Jump,
                7 => CtiClass::Return,
                _ => CtiClass::Trap,
            },
            taken,
            target: Addr(addr),
        },
    };
    TraceOp { pc: Addr(pc), kind }
}

/// Arbitrary sequences: each op's PC is independent, so the writer must
/// resync (potentially every op).
fn arbitrary_ops(raw: Vec<(u64, u32, u64, bool)>) -> Vec<TraceOp> {
    raw.into_iter()
        .map(|(pc, sel, addr, taken)| make_op(pc, sel, addr, taken))
        .collect()
}

/// Walker-shaped sequences: each op's PC is the previous op's `next_pc`,
/// so the whole stream encodes without resyncs.
fn chained_ops(start_pc: u64, raw: Vec<(u32, u64, bool)>) -> Vec<TraceOp> {
    let mut pc = start_pc;
    raw.into_iter()
        .map(|(sel, addr, taken)| {
            let op = make_op(pc, sel, addr, taken);
            pc = op.next_pc().0;
            op
        })
        .collect()
}

fn encode(ops: &[TraceOp], meta: &str) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), 7, meta).expect("header write");
    for op in ops {
        writer.append(op).expect("append");
    }
    let (bytes, stats) = writer.finish_into().expect("finish");
    assert_eq!(stats.ops, ops.len() as u64);
    assert_eq!(stats.file_bytes, bytes.len() as u64);
    bytes
}

fn decode(bytes: &[u8]) -> Result<Vec<TraceOp>, ipsim_types::CodecError> {
    let mut reader = TraceReader::open(Cursor::new(bytes))?;
    reader.validate()?;
    let mut ops = Vec::new();
    while let Some(op) = reader.next_op()? {
        ops.push(op);
    }
    Ok(ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_sequences_round_trip(
        raw in prop::collection::vec(
            (0u64..ADDR_CEIL, 0u32..9, 0u64..ADDR_CEIL, any::<bool>()),
            0..200,
        )
    ) {
        let ops = arbitrary_ops(raw);
        let bytes = encode(&ops, "prop/arbitrary");
        let decoded = decode(&bytes).expect("round trip");
        prop_assert_eq!(decoded, ops);
    }

    #[test]
    fn chained_sequences_round_trip_compactly(
        start_pc in 0u64..(1 << 40),
        raw in prop::collection::vec((0u32..9, 0u64..(1 << 40), any::<bool>()), 1..400)
    ) {
        let ops = chained_ops(start_pc, raw);
        let bytes = encode(&ops, "prop/chained");
        let decoded = decode(&bytes).expect("round trip");
        let n = ops.len();
        prop_assert_eq!(decoded, ops);
        // Chained streams never resync, so a short stream is one block and
        // the per-op cost stays near the tag+delta minimum.
        let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
        prop_assert_eq!(reader.block_count(), 1);
        let stats = reader.validate().unwrap();
        prop_assert!(stats.payload_bytes <= 8 * n as u64);
    }

    #[test]
    fn truncation_is_always_detected(
        raw in prop::collection::vec(
            (0u64..ADDR_CEIL, 0u32..9, 0u64..ADDR_CEIL, any::<bool>()),
            0..24,
        )
    ) {
        let ops = arbitrary_ops(raw);
        let bytes = encode(&ops, "prop/truncate");
        for len in 0..bytes.len() {
            prop_assert!(
                decode(&bytes[..len]).is_err(),
                "prefix of {} / {} bytes decoded successfully",
                len,
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_mis_decode(
        raw in prop::collection::vec(
            (0u64..ADDR_CEIL, 0u32..9, 0u64..ADDR_CEIL, any::<bool>()),
            1..16,
        )
    ) {
        let ops = arbitrary_ops(raw);
        let bytes = encode(&ops, "prop/bitflip");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match decode(&corrupt) {
                    Err(_) => {}
                    Ok(decoded) => prop_assert_eq!(
                        &decoded,
                        &ops,
                        "flip {}.{} decoded to different ops",
                        byte,
                        bit
                    ),
                }
            }
        }
    }
}

/// Not a property, but the degenerate case the strategies rarely hit
/// exactly: a trace with zero ops still has a valid header, empty index
/// and trailer.
#[test]
fn empty_trace_round_trips() {
    let bytes = encode(&[], "empty");
    let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
    assert_eq!(reader.total_ops(), 0);
    assert_eq!(reader.block_count(), 0);
    assert_eq!(reader.meta(), "empty");
    assert_eq!(reader.core_id(), 7);
    assert!(reader.next_op().unwrap().is_none());
    let stats = reader.validate().unwrap();
    assert_eq!(stats.ops, 0);
}

/// Blocks are cut at the payload target; a long stream produces several
/// and the index finds each one.
#[test]
fn long_streams_split_into_indexed_blocks() {
    let raw: Vec<(u32, u64, bool)> = (0..200_000u64)
        .map(|i| ((i % 9) as u32, 0x4000_0000 + i * 64, i % 3 == 0))
        .collect();
    let ops = chained_ops(0x1_0000, raw);
    let bytes = encode(&ops, "multi-block");
    let mut reader = TraceReader::open(Cursor::new(&bytes)).unwrap();
    assert!(reader.block_count() > 1, "expected multiple blocks");
    let decoded = decode(&bytes).unwrap();
    assert_eq!(decoded, ops);
    // Seeking to the last block yields exactly its tail of the stream.
    let last = reader.block_count() - 1;
    reader.seek_to_block(last).unwrap();
    let mut tail = Vec::new();
    while let Some(op) = reader.next_op().unwrap() {
        tail.push(op);
    }
    assert!(!tail.is_empty());
    assert_eq!(&ops[ops.len() - tail.len()..], tail.as_slice());
}
