//! LEB128 varints and zigzag signed mapping — the arithmetic under the
//! trace codec's delta encoding.

use ipsim_types::CodecError;

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads an unsigned LEB128 varint from the front of `input`, advancing it.
///
/// # Errors
///
/// [`CodecError::Truncated`] when the bytes run out mid-varint and
/// [`CodecError::VarintOverflow`] when the encoding exceeds 64 bits.
#[inline]
pub fn read_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    // Fast path: most deltas in a trace are a single LEB128 byte.
    if let Some((&byte, rest)) = input.split_first() {
        if byte < 0x80 {
            *input = rest;
            return Ok(u64::from(byte));
        }
    }
    read_u64_multi(input)
}

fn read_u64_multi(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input
            .split_first()
            .ok_or(CodecError::Truncated { what: "varint" })?;
        *input = rest;
        let low = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the top bit of a u64.
        if shift == 63 && low > 1 {
            return Err(CodecError::VarintOverflow);
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::VarintOverflow);
        }
    }
}

/// Maps a signed delta onto the unsigned varint domain (small magnitudes of
/// either sign stay short).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed delta as a zigzag varint.
#[inline]
pub fn write_i64(v: i64, out: &mut Vec<u8>) {
    write_u64(zigzag(v), out);
}

/// Reads a signed zigzag varint.
#[inline]
pub fn read_i64(input: &mut &[u8]) -> Result<i64, CodecError> {
    Ok(unzigzag(read_u64(input)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u(v: u64) {
        let mut buf = Vec::new();
        write_u64(v, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(read_u64(&mut s).unwrap(), v);
        assert!(s.is_empty());
    }

    #[test]
    fn unsigned_round_trips_edge_values() {
        for v in [0, 1, 0x7f, 0x80, 0x3fff, 0x4000, u64::MAX - 1, u64::MAX] {
            round_trip_u(v);
        }
    }

    #[test]
    fn encoding_lengths_match_leb128() {
        let len = |v: u64| {
            let mut b = Vec::new();
            write_u64(v, &mut b);
            b.len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(0x7f), 1);
        assert_eq!(len(0x80), 2);
        assert_eq!(len(u64::MAX), 10);
    }

    #[test]
    fn zigzag_round_trips_and_orders_by_magnitude() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes of either sign map to small codes.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(1) < 4);
    }

    #[test]
    fn signed_round_trips() {
        for v in [0i64, 4, -4, 1 << 40, -(1 << 40), i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(v, &mut buf);
            let mut s = buf.as_slice();
            assert_eq!(read_i64(&mut s).unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        let mut s: &[u8] = &[0x80, 0x80];
        assert_eq!(
            read_u64(&mut s),
            Err(CodecError::Truncated { what: "varint" })
        );
        // 10 continuation bytes followed by more payload than u64 holds.
        let mut s: &[u8] = &[0xff; 11];
        assert_eq!(read_u64(&mut s), Err(CodecError::VarintOverflow));
        // 10th byte carrying more than the final u64 bit.
        let mut s: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert_eq!(read_u64(&mut s), Err(CodecError::VarintOverflow));
    }
}
