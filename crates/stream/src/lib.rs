//! Binary trace capture/replay for the `ipsim` instruction-prefetching
//! simulator.
//!
//! The synthetic trace walker (`ipsim-trace`) is deterministic but not
//! free: generating a stream costs PRNG and state-machine work per op,
//! repeated for *every* configuration in a sweep even though the
//! instruction stream only depends on the workload half of the spec. This
//! crate makes streams first-class artifacts:
//!
//! * [`codec`] — per-op delta encoding (tag byte + zigzag varints, PC
//!   elided via stream self-consistency),
//! * [`writer`] / [`reader`] — CRC-framed blocks with a seekable index;
//!   any bit flip or truncation is detected, never mis-decoded,
//! * [`TraceSource`] / [`TraceSink`] — the capture/replay seam: the CPU
//!   model consumes a `TraceSource`, which can be a live walker, a
//!   [`Tee`] (walker + capture to disk), or a [`ReplaySource`] decoding a
//!   stored trace.
//!
//! Capture once, replay everywhere: the harness stores one trace per
//! workload stream and feeds every other config in the sweep from it,
//! with byte-identical figure output (enforced by integration test).
//!
//! # Example
//!
//! ```
//! use ipsim_stream::{ReplaySource, TraceReader, TraceSource, TraceWriter};
//! use ipsim_types::instr::{OpKind, TraceOp};
//! use ipsim_types::Addr;
//!
//! let mut writer = TraceWriter::new(Vec::new(), 0, "demo").unwrap();
//! let op = TraceOp { pc: Addr(0x1000), kind: OpKind::Other };
//! writer.append(&op).unwrap();
//! let (bytes, stats) = writer.finish_into().unwrap();
//! assert_eq!(stats.ops, 1);
//!
//! let reader = TraceReader::open(std::io::Cursor::new(bytes)).unwrap();
//! let mut replay = ReplaySource::new(reader).unwrap();
//! assert_eq!(replay.next_op(), op);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod reader;
pub mod varint;
pub mod writer;

use std::io::{Read, Seek, Write};

use ipsim_types::instr::TraceOp;
use ipsim_types::{CodecError, StreamStats};

pub use reader::TraceReader;
pub use writer::{TraceWriter, BLOCK_TARGET_BYTES, FORMAT_VERSION};

/// An infinite, infallible stream of instructions — what the CPU model
/// consumes. Implemented by the live walker (`ipsim-trace`), by [`Tee`]
/// (live + capture), and by [`ReplaySource`] (decode from disk).
///
/// Infallibility is a deliberate contract: the simulator core has no
/// error path mid-run. Sources that can fail (capture I/O, decode) must
/// either absorb the failure ([`Tee`] keeps streaming and reports the
/// sink error afterwards) or front-load it (replay requires a validated
/// trace).
pub trait TraceSource {
    /// Produces the next instruction.
    fn next_op(&mut self) -> TraceOp;

    /// Fills `out` with the next `out.len()` instructions, in stream
    /// order — exactly equivalent to `out.len()` calls to
    /// [`TraceSource::next_op`].
    ///
    /// The CPU model consumes sources through `&mut dyn TraceSource`; this
    /// batched entry point amortises the virtual call (and, for
    /// implementations that override it, per-op decode dispatch) over a
    /// scheduler quantum instead of paying it per instruction. The default
    /// simply loops `next_op`, so implementing it is optional.
    fn next_block(&mut self, out: &mut [TraceOp]) {
        for slot in out {
            *slot = self.next_op();
        }
    }

    /// Zero-copy variant of [`TraceSource::next_block`]: returns a
    /// borrowed view of the next `n` instructions and advances past them,
    /// or `None` when this source cannot lend its ops (the default — live
    /// walkers generate ops, tees must observe every op, replay decodes
    /// into a rotating buffer). Only sources that hold fully decoded ops
    /// in memory ([`ArenaSource`]) override this.
    ///
    /// A `Some` slice has exactly `n` ops; an implementation that cannot
    /// serve `n` more ops must panic (the scheduler never asks past the
    /// agreed stream length, so running dry is a harness bug — the same
    /// contract as [`ReplaySource`]'s `next_op`).
    fn next_slice(&mut self, n: usize) -> Option<&[TraceOp]> {
        let _ = n;
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        (**self).next_block(out)
    }

    fn next_slice(&mut self, n: usize) -> Option<&[TraceOp]> {
        (**self).next_slice(n)
    }
}

/// A destination for captured instructions.
pub trait TraceSink {
    /// Records one instruction.
    fn record(&mut self, op: &TraceOp) -> Result<(), CodecError>;
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn record(&mut self, op: &TraceOp) -> Result<(), CodecError> {
        self.append(op)
    }
}

/// Streams from `source` while recording every op into `sink`.
///
/// Sink failures do not interrupt the stream: the first error is latched
/// and recording stops, but `next_op` keeps serving the live source, so a
/// full disk degrades a capture run into a plain live run instead of
/// killing the simulation. Check [`Tee::into_parts`] afterwards to learn
/// whether the capture is complete.
pub struct Tee<S, K> {
    source: S,
    sink: K,
    error: Option<CodecError>,
}

impl<S: TraceSource, K: TraceSink> Tee<S, K> {
    /// Wraps `source`, mirroring its ops into `sink`.
    pub fn new(source: S, sink: K) -> Tee<S, K> {
        Tee {
            source,
            sink,
            error: None,
        }
    }

    /// The first sink error, if recording has failed.
    pub fn error(&self) -> Option<&CodecError> {
        self.error.as_ref()
    }

    /// Dismantles the tee, returning the sink and the first sink error
    /// (if any). A `None` error means every op served was also recorded.
    pub fn into_parts(self) -> (K, Option<CodecError>) {
        (self.sink, self.error)
    }
}

impl<S: TraceSource, K: TraceSink> TraceSource for Tee<S, K> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        let op = self.source.next_op();
        if self.error.is_none() {
            if let Err(e) = self.sink.record(&op) {
                self.error = Some(e);
            }
        }
        op
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        self.source.next_block(out);
        if self.error.is_none() {
            for op in out.iter() {
                if let Err(e) = self.sink.record(op) {
                    self.error = Some(e);
                    break;
                }
            }
        }
    }
}

/// Replays a stored trace as an infallible [`TraceSource`].
///
/// Construction runs [`TraceReader::verify_blocks`], so every block's CRC
/// and op count is proven good — at checksum speed, without decoding —
/// before the first op is served. The only ways `next_op` can fail
/// afterwards are an I/O fault, a CRC-valid-but-undecodable payload
/// (impossible for writer-produced files) or draining the trace past its
/// recorded length; all indicate a harness bug and panic rather than
/// feeding the simulator a wrong stream.
pub struct ReplaySource<R: Read + Seek> {
    reader: TraceReader<R>,
    stats: StreamStats,
}

impl<R: Read + Seek> ReplaySource<R> {
    /// Verifies `reader`'s whole trace, then positions at the first op.
    pub fn new(mut reader: TraceReader<R>) -> Result<ReplaySource<R>, CodecError> {
        let stats = reader.verify_blocks()?;
        Ok(ReplaySource { reader, stats })
    }

    /// Whole-trace statistics gathered during verification.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Replays fully decoded, in-memory instructions as an infallible
/// [`TraceSource`] — the zero-copy end of the capture/replay seam.
///
/// Decode a trace once with
/// [`TraceReader::decode_all_into`](reader::TraceReader::decode_all_into)
/// (or synthesise ops any other way), then replay the arena any number of
/// times without touching the codec again. [`TraceSource::next_slice`]
/// hands the scheduler borrowed sub-slices, so a replayed run performs no
/// per-op decode *and* no per-quantum copy.
///
/// Generic over anything that derefs to `[TraceOp]` (`Vec`, `&[TraceOp]`,
/// or an `Arc`-backed view), so one decoded arena can feed many runs.
///
/// # Panics
///
/// Like [`ReplaySource`], draining past the end of the arena panics: the
/// scheduler never asks for more ops than the agreed stream length, so
/// running dry is a harness bug, not a runtime condition.
pub struct ArenaSource<T: AsRef<[TraceOp]>> {
    ops: T,
    pos: usize,
}

impl<T: AsRef<[TraceOp]>> ArenaSource<T> {
    /// A source serving `ops` from the start.
    pub fn new(ops: T) -> ArenaSource<T> {
        ArenaSource { ops, pos: 0 }
    }

    /// Ops served so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Total ops in the arena.
    pub fn len(&self) -> usize {
        self.ops.as_ref().len()
    }

    /// `true` when the arena holds no ops at all.
    pub fn is_empty(&self) -> bool {
        self.ops.as_ref().is_empty()
    }

    /// Restarts from the first op.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

impl<T: AsRef<[TraceOp]>> TraceSource for ArenaSource<T> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops.as_ref()[self.pos];
        self.pos += 1;
        op
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        let end = self.pos + out.len();
        out.copy_from_slice(&self.ops.as_ref()[self.pos..end]);
        self.pos = end;
    }

    #[inline]
    fn next_slice(&mut self, n: usize) -> Option<&[TraceOp]> {
        let start = self.pos;
        self.pos += n;
        Some(&self.ops.as_ref()[start..self.pos])
    }
}

impl<R: Read + Seek> TraceSource for ReplaySource<R> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        self.reader
            .next_op()
            .expect("validated trace failed mid-replay")
            .expect("replay ran past end of trace")
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        // One virtual call per scheduler quantum; the decode loop itself
        // is monomorphised here rather than re-entered through the vtable.
        for slot in out {
            *slot = self
                .reader
                .next_op()
                .expect("validated trace failed mid-replay")
                .expect("replay ran past end of trace");
        }
    }
}
