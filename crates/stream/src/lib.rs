//! Binary trace capture/replay for the `ipsim` instruction-prefetching
//! simulator.
//!
//! The synthetic trace walker (`ipsim-trace`) is deterministic but not
//! free: generating a stream costs PRNG and state-machine work per op,
//! repeated for *every* configuration in a sweep even though the
//! instruction stream only depends on the workload half of the spec. This
//! crate makes streams first-class artifacts:
//!
//! * [`codec`] — per-op delta encoding (tag byte + zigzag varints, PC
//!   elided via stream self-consistency),
//! * [`writer`] / [`reader`] — CRC-framed blocks with a seekable index;
//!   any bit flip or truncation is detected, never mis-decoded,
//! * [`TraceSource`] / [`TraceSink`] — the capture/replay seam: the CPU
//!   model consumes a `TraceSource`, which can be a live walker, a
//!   [`Tee`] (walker + capture to disk), or a [`ReplaySource`] decoding a
//!   stored trace.
//!
//! Capture once, replay everywhere: the harness stores one trace per
//! workload stream and feeds every other config in the sweep from it,
//! with byte-identical figure output (enforced by integration test).
//!
//! # Example
//!
//! ```
//! use ipsim_stream::{ReplaySource, TraceReader, TraceSource, TraceWriter};
//! use ipsim_types::instr::{OpKind, TraceOp};
//! use ipsim_types::Addr;
//!
//! let mut writer = TraceWriter::new(Vec::new(), 0, "demo").unwrap();
//! let op = TraceOp { pc: Addr(0x1000), kind: OpKind::Other };
//! writer.append(&op).unwrap();
//! let (bytes, stats) = writer.finish_into().unwrap();
//! assert_eq!(stats.ops, 1);
//!
//! let reader = TraceReader::open(std::io::Cursor::new(bytes)).unwrap();
//! let mut replay = ReplaySource::new(reader).unwrap();
//! assert_eq!(replay.next_op(), op);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod reader;
pub mod varint;
pub mod writer;

use std::io::{Read, Seek, Write};

use ipsim_types::instr::TraceOp;
use ipsim_types::{CodecError, StreamStats};

pub use reader::TraceReader;
pub use writer::{TraceWriter, BLOCK_TARGET_BYTES, FORMAT_VERSION};

/// An infinite, infallible stream of instructions — what the CPU model
/// consumes. Implemented by the live walker (`ipsim-trace`), by [`Tee`]
/// (live + capture), and by [`ReplaySource`] (decode from disk).
///
/// Infallibility is a deliberate contract: the simulator core has no
/// error path mid-run. Sources that can fail (capture I/O, decode) must
/// either absorb the failure ([`Tee`] keeps streaming and reports the
/// sink error afterwards) or front-load it (replay requires a validated
/// trace).
pub trait TraceSource {
    /// Produces the next instruction.
    fn next_op(&mut self) -> TraceOp;

    /// Fills `out` with the next `out.len()` instructions, in stream
    /// order — exactly equivalent to `out.len()` calls to
    /// [`TraceSource::next_op`].
    ///
    /// The CPU model consumes sources through `&mut dyn TraceSource`; this
    /// batched entry point amortises the virtual call (and, for
    /// implementations that override it, per-op decode dispatch) over a
    /// scheduler quantum instead of paying it per instruction. The default
    /// simply loops `next_op`, so implementing it is optional.
    fn next_block(&mut self, out: &mut [TraceOp]) {
        for slot in out {
            *slot = self.next_op();
        }
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        (**self).next_block(out)
    }
}

/// A destination for captured instructions.
pub trait TraceSink {
    /// Records one instruction.
    fn record(&mut self, op: &TraceOp) -> Result<(), CodecError>;
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn record(&mut self, op: &TraceOp) -> Result<(), CodecError> {
        self.append(op)
    }
}

/// Streams from `source` while recording every op into `sink`.
///
/// Sink failures do not interrupt the stream: the first error is latched
/// and recording stops, but `next_op` keeps serving the live source, so a
/// full disk degrades a capture run into a plain live run instead of
/// killing the simulation. Check [`Tee::into_parts`] afterwards to learn
/// whether the capture is complete.
pub struct Tee<S, K> {
    source: S,
    sink: K,
    error: Option<CodecError>,
}

impl<S: TraceSource, K: TraceSink> Tee<S, K> {
    /// Wraps `source`, mirroring its ops into `sink`.
    pub fn new(source: S, sink: K) -> Tee<S, K> {
        Tee {
            source,
            sink,
            error: None,
        }
    }

    /// The first sink error, if recording has failed.
    pub fn error(&self) -> Option<&CodecError> {
        self.error.as_ref()
    }

    /// Dismantles the tee, returning the sink and the first sink error
    /// (if any). A `None` error means every op served was also recorded.
    pub fn into_parts(self) -> (K, Option<CodecError>) {
        (self.sink, self.error)
    }
}

impl<S: TraceSource, K: TraceSink> TraceSource for Tee<S, K> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        let op = self.source.next_op();
        if self.error.is_none() {
            if let Err(e) = self.sink.record(&op) {
                self.error = Some(e);
            }
        }
        op
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        self.source.next_block(out);
        if self.error.is_none() {
            for op in out.iter() {
                if let Err(e) = self.sink.record(op) {
                    self.error = Some(e);
                    break;
                }
            }
        }
    }
}

/// Replays a stored trace as an infallible [`TraceSource`].
///
/// Construction runs [`TraceReader::verify_blocks`], so every block's CRC
/// and op count is proven good — at checksum speed, without decoding —
/// before the first op is served. The only ways `next_op` can fail
/// afterwards are an I/O fault, a CRC-valid-but-undecodable payload
/// (impossible for writer-produced files) or draining the trace past its
/// recorded length; all indicate a harness bug and panic rather than
/// feeding the simulator a wrong stream.
pub struct ReplaySource<R: Read + Seek> {
    reader: TraceReader<R>,
    stats: StreamStats,
}

impl<R: Read + Seek> ReplaySource<R> {
    /// Verifies `reader`'s whole trace, then positions at the first op.
    pub fn new(mut reader: TraceReader<R>) -> Result<ReplaySource<R>, CodecError> {
        let stats = reader.verify_blocks()?;
        Ok(ReplaySource { reader, stats })
    }

    /// Whole-trace statistics gathered during verification.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

impl<R: Read + Seek> TraceSource for ReplaySource<R> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        self.reader
            .next_op()
            .expect("validated trace failed mid-replay")
            .expect("replay ran past end of trace")
    }

    fn next_block(&mut self, out: &mut [TraceOp]) {
        // One virtual call per scheduler quantum; the decode loop itself
        // is monomorphised here rather than re-entered through the vtable.
        for slot in out {
            *slot = self
                .reader
                .next_op()
                .expect("validated trace failed mid-replay")
                .expect("replay ran past end of trace");
        }
    }
}
