//! [`TraceWriter`]: streams [`TraceOp`]s into the on-disk block format.
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! header   "ipsimstr" | version u32 | core_id u32 | meta_len u32
//!          | meta bytes | crc32(version..meta) u32
//! blocks*  n_ops u32 | payload_len u32 | start_pc u64 | start_data u64
//!          | crc32(block header fields ++ payload) u32 | payload bytes
//! footer   "ipsimidx" | n_blocks u64 | { offset u64, n_ops u32 }*
//!          | total_ops u64 | crc32(n_blocks..total_ops) u32
//! trailer  footer_offset u64 | crc32(footer_offset) u32 | "ipsimend"
//! ```
//!
//! Every byte of the file is covered by a CRC or is a magic string, so any
//! single-bit corruption is *detected* rather than silently mis-decoded:
//! the reader refuses the file instead of producing a plausible-but-wrong
//! instruction stream. The fixed-size trailer lets a reader find the block
//! index without scanning, which is what makes the format seekable.
//!
//! Blocks are cut at roughly [`BLOCK_TARGET_BYTES`] of payload, or earlier
//! when an op's PC breaks the decode chain (see [`crate::codec`]); each
//! block header pins the codec state so blocks decode independently.

use std::io::Write;

use ipsim_types::instr::TraceOp;
use ipsim_types::{CodecError, StreamStats};

use crate::codec::{self, CodecState, EncodeOutcome};
use crate::crc32::Crc32;

/// Identifies the file as an ipsim instruction trace.
pub const FILE_MAGIC: &[u8; 8] = b"ipsimstr";
/// Marks the start of the block index footer.
pub const INDEX_MAGIC: &[u8; 8] = b"ipsimidx";
/// Terminates the file; anything after this is foreign.
pub const END_MAGIC: &[u8; 8] = b"ipsimend";

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Payload size at which the current block is closed. Large enough to keep
/// framing overhead negligible (~28 bytes per ~64 KiB), small enough that a
/// reader never buffers much.
pub const BLOCK_TARGET_BYTES: usize = 64 * 1024;

/// Size of the fixed trailer at the end of every trace file.
pub const TRAILER_BYTES: u64 = 8 + 4 + 8;

/// One entry of the block index: where a block starts and how many ops it
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Byte offset of the block header from the start of the file.
    pub offset: u64,
    /// Number of ops encoded in the block.
    pub n_ops: u32,
}

/// Streaming trace encoder over any [`Write`] destination.
///
/// Append ops with [`append`](TraceWriter::append) and seal the file with
/// [`finish`](TraceWriter::finish) — a trace without its footer and trailer
/// is rejected by the reader, so dropping a writer without finishing leaves
/// a detectably-invalid file (this is what makes interrupted captures safe).
pub struct TraceWriter<W: Write> {
    out: W,
    offset: u64,
    index: Vec<BlockEntry>,
    total_ops: u64,
    payload_bytes: u64,
    /// Codec state advanced across the whole stream; the open block's
    /// header is derived from a snapshot of it.
    state: CodecState,
    block_start: CodecState,
    block_ops: u32,
    payload: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace for `core_id`, writing the file header immediately.
    /// `meta` is a free-form description stored verbatim (the harness puts
    /// the workload descriptor here so a trace is self-identifying).
    pub fn new(mut out: W, core_id: u32, meta: &str) -> Result<TraceWriter<W>, CodecError> {
        let mut body = Vec::with_capacity(12 + meta.len());
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&core_id.to_le_bytes());
        body.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        body.extend_from_slice(meta.as_bytes());
        let mut crc = Crc32::new();
        crc.update(&body);
        out.write_all(FILE_MAGIC)?;
        out.write_all(&body)?;
        out.write_all(&crc.finish().to_le_bytes())?;
        let offset = FILE_MAGIC.len() as u64 + body.len() as u64 + 4;
        Ok(TraceWriter {
            out,
            offset,
            index: Vec::new(),
            total_ops: 0,
            payload_bytes: 0,
            state: CodecState::at(0, 0),
            block_start: CodecState::at(0, 0),
            block_ops: 0,
            payload: Vec::with_capacity(BLOCK_TARGET_BYTES + 16),
        })
    }

    /// Appends one op to the stream.
    pub fn append(&mut self, op: &TraceOp) -> Result<(), CodecError> {
        if self.block_ops == 0 {
            // Pin the fresh block at this op; the data-delta base carries
            // over so cross-block deltas stay short.
            self.state.pc = op.pc.0;
            self.block_start = self.state;
        }
        match codec::encode_op(&mut self.state, op, &mut self.payload) {
            EncodeOutcome::Encoded => {}
            EncodeOutcome::NeedsResync => {
                self.flush_block()?;
                self.state.pc = op.pc.0;
                self.block_start = self.state;
                let outcome = codec::encode_op(&mut self.state, op, &mut self.payload);
                debug_assert_eq!(outcome, EncodeOutcome::Encoded);
            }
        }
        self.block_ops += 1;
        if self.payload.len() >= BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the open block, if any, and records it in the index.
    fn flush_block(&mut self) -> Result<(), CodecError> {
        if self.block_ops == 0 {
            return Ok(());
        }
        let mut header = [0u8; 24];
        header[0..4].copy_from_slice(&self.block_ops.to_le_bytes());
        header[4..8].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        header[8..16].copy_from_slice(&self.block_start.pc.to_le_bytes());
        header[16..24].copy_from_slice(&self.block_start.prev_data.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&header);
        crc.update(&self.payload);
        self.out.write_all(&header)?;
        self.out.write_all(&crc.finish().to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.index.push(BlockEntry {
            offset: self.offset,
            n_ops: self.block_ops,
        });
        self.total_ops += u64::from(self.block_ops);
        self.payload_bytes += self.payload.len() as u64;
        self.offset += header.len() as u64 + 4 + self.payload.len() as u64;
        self.payload.clear();
        self.block_ops = 0;
        Ok(())
    }

    /// Seals the trace: flushes the last block, writes the index footer and
    /// trailer, and returns encoding statistics.
    pub fn finish(self) -> Result<StreamStats, CodecError> {
        self.finish_into().map(|(_, stats)| stats)
    }

    /// Like [`finish`](TraceWriter::finish), but also hands back the
    /// destination — useful when writing to an in-memory buffer.
    pub fn finish_into(mut self) -> Result<(W, StreamStats), CodecError> {
        self.flush_block()?;
        let footer_offset = self.offset;
        let mut body = Vec::with_capacity(16 + self.index.len() * 12);
        body.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        for entry in &self.index {
            body.extend_from_slice(&entry.offset.to_le_bytes());
            body.extend_from_slice(&entry.n_ops.to_le_bytes());
        }
        body.extend_from_slice(&self.total_ops.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&body);
        self.out.write_all(INDEX_MAGIC)?;
        self.out.write_all(&body)?;
        self.out.write_all(&crc.finish().to_le_bytes())?;
        self.offset += INDEX_MAGIC.len() as u64 + body.len() as u64 + 4;

        let off_bytes = footer_offset.to_le_bytes();
        let mut tcrc = Crc32::new();
        tcrc.update(&off_bytes);
        self.out.write_all(&off_bytes)?;
        self.out.write_all(&tcrc.finish().to_le_bytes())?;
        self.out.write_all(END_MAGIC)?;
        self.offset += TRAILER_BYTES;
        self.out.flush()?;
        let stats = StreamStats {
            ops: self.total_ops,
            blocks: self.index.len() as u64,
            payload_bytes: self.payload_bytes,
            file_bytes: self.offset,
        };
        Ok((self.out, stats))
    }
}
