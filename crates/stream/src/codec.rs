//! The per-event codec: one [`TraceOp`] to/from a tag byte plus delta
//! varints, relative to a running decode state.
//!
//! The walker's streams are *self-consistent* — each op's PC follows from
//! the previous op — so the PC is never stored per event. The codec keeps
//! the expected PC in [`CodecState`] and encodes only:
//!
//! * a tag byte (op kind, CTI class and taken bit),
//! * for loads/stores: the data address as a zigzag delta from the previous
//!   data address (locality makes these short),
//! * for CTIs: the target as a zigzag delta from the current PC (branch
//!   displacements are short; even calls rarely need more than 4 bytes).
//!
//! An op whose PC does *not* match the expected chain cannot be encoded
//! against this state — [`encode_op`] reports it so the framing layer can
//! start a fresh block pinned at the new PC. This keeps the format correct
//! for arbitrary event sequences, not only walker output.

use ipsim_types::instr::{CtiClass, OpKind, TraceOp};
use ipsim_types::{Addr, CodecError};

use crate::varint;

/// Event tags. CTI tags pack `class * 2 + taken` on top of [`TAG_CTI_BASE`].
const TAG_OTHER: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_CTI_BASE: u8 = 3;

/// CTI classes in tag order. The on-disk format is defined by this order;
/// reordering it is a format change and needs a version bump.
const CTI_CLASSES: [CtiClass; 6] = [
    CtiClass::CondBranch,
    CtiClass::UncondBranch,
    CtiClass::Call,
    CtiClass::Jump,
    CtiClass::Return,
    CtiClass::Trap,
];

/// Highest defined tag.
const TAG_MAX: u8 = TAG_CTI_BASE + 2 * CTI_CLASSES.len() as u8 - 1;

fn cti_index(class: CtiClass) -> u8 {
    CTI_CLASSES
        .iter()
        .position(|c| *c == class)
        .expect("every CtiClass has a tag") as u8
}

/// Running codec state: the PC the next op must have, and the most recent
/// data address (the delta base for loads/stores).
///
/// Encoder and decoder advance identical copies of this state, which is
/// what lets both sides omit the PC entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecState {
    /// Expected PC of the next op.
    pub pc: u64,
    /// Previous data address (0 before the first load/store).
    pub prev_data: u64,
}

impl CodecState {
    /// State pinned at `pc` with a fresh data-delta base.
    pub fn at(pc: u64, prev_data: u64) -> CodecState {
        CodecState { pc, prev_data }
    }

    /// Advances the state past `op`.
    #[inline]
    fn advance(&mut self, op: &TraceOp) {
        match op.kind {
            OpKind::Load { addr } | OpKind::Store { addr } => self.prev_data = addr.0,
            _ => {}
        }
        self.pc = op.next_pc().0;
    }
}

/// Whether an op fits the current state chain.
#[derive(Debug, PartialEq, Eq)]
pub enum EncodeOutcome {
    /// The op was appended to `out`.
    Encoded,
    /// The op's PC breaks the chain; the framing layer must start a new
    /// block at this op's PC. Nothing was written.
    NeedsResync,
}

/// Encodes `op` against `state`, appending to `out` and advancing the
/// state. Returns [`EncodeOutcome::NeedsResync`] (writing nothing) when
/// `op.pc` differs from the state's expected PC.
#[inline]
pub fn encode_op(state: &mut CodecState, op: &TraceOp, out: &mut Vec<u8>) -> EncodeOutcome {
    if op.pc.0 != state.pc {
        return EncodeOutcome::NeedsResync;
    }
    match op.kind {
        OpKind::Other => out.push(TAG_OTHER),
        OpKind::Load { addr } => {
            out.push(TAG_LOAD);
            varint::write_i64(addr.0.wrapping_sub(state.prev_data) as i64, out);
        }
        OpKind::Store { addr } => {
            out.push(TAG_STORE);
            varint::write_i64(addr.0.wrapping_sub(state.prev_data) as i64, out);
        }
        OpKind::Cti {
            class,
            taken,
            target,
        } => {
            out.push(TAG_CTI_BASE + 2 * cti_index(class) + u8::from(taken));
            varint::write_i64(target.0.wrapping_sub(op.pc.0) as i64, out);
        }
    }
    state.advance(op);
    EncodeOutcome::Encoded
}

/// Decodes one op from the front of `input`, advancing both the slice and
/// `state`.
///
/// # Errors
///
/// [`CodecError::Truncated`] when `input` is empty or ends mid-record,
/// [`CodecError::BadTag`] for an undefined tag byte, and varint errors from
/// the delta fields.
#[inline]
pub fn decode_op(state: &mut CodecState, input: &mut &[u8]) -> Result<TraceOp, CodecError> {
    let (&tag, rest) = input
        .split_first()
        .ok_or(CodecError::Truncated { what: "event tag" })?;
    *input = rest;
    let pc = Addr(state.pc);
    let kind = match tag {
        TAG_OTHER => OpKind::Other,
        TAG_LOAD => OpKind::Load {
            addr: Addr(
                state
                    .prev_data
                    .wrapping_add(varint::read_i64(input)? as u64),
            ),
        },
        TAG_STORE => OpKind::Store {
            addr: Addr(
                state
                    .prev_data
                    .wrapping_add(varint::read_i64(input)? as u64),
            ),
        },
        TAG_CTI_BASE..=TAG_MAX => {
            let idx = tag - TAG_CTI_BASE;
            OpKind::Cti {
                class: CTI_CLASSES[(idx / 2) as usize],
                taken: idx & 1 == 1,
                target: Addr(pc.0.wrapping_add(varint::read_i64(input)? as u64)),
            }
        }
        _ => return Err(CodecError::BadTag { tag }),
    };
    let op = TraceOp { pc, kind };
    state.advance(&op);
    Ok(op)
}

/// A PC that follows `pc` sequentially (test helper).
#[cfg(test)]
fn sequential_next(pc: u64) -> u64 {
    pc.wrapping_add(ipsim_types::instr::INSTR_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(ops: &[TraceOp]) -> (Vec<u8>, CodecState) {
        let start = CodecState::at(ops[0].pc.0, 0);
        let mut state = start;
        let mut buf = Vec::new();
        for op in ops {
            assert_eq!(encode_op(&mut state, op, &mut buf), EncodeOutcome::Encoded);
        }
        (buf, start)
    }

    fn decode_all(buf: &[u8], mut state: CodecState, n: usize) -> Vec<TraceOp> {
        let mut input = buf;
        let ops: Vec<TraceOp> = (0..n)
            .map(|_| decode_op(&mut state, &mut input).unwrap())
            .collect();
        assert!(input.is_empty(), "trailing bytes after decode");
        ops
    }

    #[test]
    fn mixed_sequence_round_trips() {
        let ops = vec![
            TraceOp {
                pc: Addr(0x1000),
                kind: OpKind::Other,
            },
            TraceOp {
                pc: Addr(0x1004),
                kind: OpKind::Load {
                    addr: Addr(0x9_0000),
                },
            },
            TraceOp {
                pc: Addr(0x1008),
                kind: OpKind::Store {
                    addr: Addr(0x9_0040),
                },
            },
            TraceOp {
                pc: Addr(0x100c),
                kind: OpKind::Cti {
                    class: CtiClass::CondBranch,
                    taken: false,
                    target: Addr(0x0800),
                },
            },
            TraceOp {
                pc: Addr(0x1010),
                kind: OpKind::Cti {
                    class: CtiClass::Call,
                    taken: true,
                    target: Addr(0x4_0000),
                },
            },
            TraceOp {
                pc: Addr(0x4_0000),
                kind: OpKind::Cti {
                    class: CtiClass::Return,
                    taken: true,
                    target: Addr(0x1014),
                },
            },
        ];
        let (buf, start) = chain(&ops);
        assert_eq!(decode_all(&buf, start, ops.len()), ops);
        // Adjacent data refs and short branches stay compact.
        assert!(
            buf.len() <= 3 * ops.len() + 6,
            "encoded {} bytes",
            buf.len()
        );
    }

    #[test]
    fn pc_mismatch_requests_resync_without_writing() {
        let mut state = CodecState::at(0x1000, 0);
        let mut buf = Vec::new();
        let op = TraceOp {
            pc: Addr(0x2000),
            kind: OpKind::Other,
        };
        assert_eq!(
            encode_op(&mut state, &op, &mut buf),
            EncodeOutcome::NeedsResync
        );
        assert!(buf.is_empty());
        assert_eq!(state, CodecState::at(0x1000, 0));
    }

    #[test]
    fn undefined_tags_are_rejected() {
        let mut state = CodecState::at(0, 0);
        let mut input: &[u8] = &[TAG_MAX + 1];
        assert_eq!(
            decode_op(&mut state, &mut input),
            Err(CodecError::BadTag { tag: TAG_MAX + 1 })
        );
        let mut input: &[u8] = &[];
        assert!(matches!(
            decode_op(&mut state, &mut input),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn every_cti_class_and_taken_bit_round_trips() {
        let mut pc = 0x8000u64;
        let mut ops = Vec::new();
        for class in CTI_CLASSES {
            for taken in [false, true] {
                let target = Addr(0x10_0000);
                ops.push(TraceOp {
                    pc: Addr(pc),
                    kind: OpKind::Cti {
                        class,
                        taken,
                        target,
                    },
                });
                pc = if taken { target.0 } else { sequential_next(pc) };
            }
        }
        let (buf, start) = chain(&ops);
        assert_eq!(decode_all(&buf, start, ops.len()), ops);
    }
}
