//! [`TraceReader`]: decodes trace files written by
//! [`TraceWriter`](crate::writer::TraceWriter).
//!
//! Opening a reader parses the header, trailer and block index (three
//! seeks, no payload scan), so open is cheap even on multi-gigabyte
//! traces. Blocks are then decoded lazily, one at a time, as
//! [`next_op`](TraceReader::next_op) crosses block boundaries. Every block
//! is CRC-checked before any of its ops are surfaced; a corrupt file
//! yields an error, never a wrong instruction.
//!
//! Two whole-file checks exist, ordered by cost:
//!
//! * [`verify_blocks`](TraceReader::verify_blocks) reads and CRC-checks
//!   every block *without decoding a single op* — this is how the harness
//!   proves a stored trace is replayable before committing a run to it,
//!   at memory-bandwidth speed rather than decode speed;
//! * [`validate`](TraceReader::validate) additionally decodes every op
//!   and reconciles counts against the index (the deep scan used by tests
//!   and tools).
//!
//! Ops are decoded lazily, one at a time, straight out of the CRC-verified
//! payload buffer — no intermediate op vector — because replay decode
//! throughput competes directly with live walker generation.

use std::io::{Read, Seek, SeekFrom};

use ipsim_types::instr::TraceOp;
use ipsim_types::{CodecError, StreamStats};

use crate::codec::{self, CodecState};
use crate::crc32::Crc32;
use crate::writer::{
    BlockEntry, END_MAGIC, FILE_MAGIC, FORMAT_VERSION, INDEX_MAGIC, TRAILER_BYTES,
};

/// Upper bound on the header meta string; a larger length is corruption.
const MAX_META_BYTES: u32 = 1 << 20;

/// Minimum encoded size of one block (header + CRC + one-byte payload).
const MIN_BLOCK_BYTES: u64 = 24 + 4 + 1;

/// Streaming, seekable trace decoder.
pub struct TraceReader<R: Read + Seek> {
    inner: R,
    core_id: u32,
    meta: String,
    index: Vec<BlockEntry>,
    total_ops: u64,
    file_bytes: u64,
    /// Next block to load when the current payload drains.
    next_block: usize,
    /// CRC-verified payload of the current block (buffer reused across
    /// blocks).
    payload: Vec<u8>,
    /// Byte position within `payload`.
    pos: usize,
    /// Ops remaining in the current block.
    ops_left: u32,
    /// Codec state advancing through the current block.
    state: CodecState,
    /// Sum of payload bytes seen so far (for decode-rate accounting).
    payload_bytes_seen: u64,
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated { what }
        } else {
            CodecError::Io(e.to_string())
        }
    })
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

impl<R: Read + Seek> TraceReader<R> {
    /// Opens a trace: verifies the header, trailer and block index, and
    /// positions the stream at the first op.
    pub fn open(mut inner: R) -> Result<TraceReader<R>, CodecError> {
        let file_bytes = inner.seek(SeekFrom::End(0))?;
        inner.seek(SeekFrom::Start(0))?;

        // --- header ---
        let mut magic = [0u8; 8];
        read_exact(&mut inner, &mut magic, "file magic")?;
        if &magic != FILE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut fixed = [0u8; 12];
        read_exact(&mut inner, &mut fixed, "file header")?;
        let version = u32_at(&fixed, 0);
        let core_id = u32_at(&fixed, 4);
        let meta_len = u32_at(&fixed, 8);
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        if meta_len > MAX_META_BYTES {
            return Err(CodecError::Truncated {
                what: "header meta",
            });
        }
        let mut meta_bytes = vec![0u8; meta_len as usize];
        read_exact(&mut inner, &mut meta_bytes, "header meta")?;
        let mut stored = [0u8; 4];
        read_exact(&mut inner, &mut stored, "header crc")?;
        let mut crc = Crc32::new();
        crc.update(&fixed);
        crc.update(&meta_bytes);
        if crc.finish() != u32_at(&stored, 0) {
            return Err(CodecError::CrcMismatch {
                what: "header",
                block: 0,
            });
        }
        let meta = String::from_utf8(meta_bytes).map_err(|_| CodecError::CrcMismatch {
            what: "header meta utf-8",
            block: 0,
        })?;
        let data_start = 8 + 12 + u64::from(meta_len) + 4;

        // --- trailer ---
        if file_bytes < data_start + TRAILER_BYTES {
            return Err(CodecError::Truncated { what: "trailer" });
        }
        inner.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
        let mut trailer = [0u8; TRAILER_BYTES as usize];
        read_exact(&mut inner, &mut trailer, "trailer")?;
        if &trailer[12..20] != END_MAGIC {
            return Err(CodecError::BadMagic);
        }
        if crate::crc32::crc32(&trailer[0..8]) != u32_at(&trailer, 8) {
            return Err(CodecError::CrcMismatch {
                what: "trailer",
                block: 0,
            });
        }
        let footer_offset = u64_at(&trailer, 0);
        if footer_offset < data_start || footer_offset > file_bytes - TRAILER_BYTES {
            return Err(CodecError::Truncated {
                what: "footer offset",
            });
        }

        // --- footer / block index ---
        inner.seek(SeekFrom::Start(footer_offset))?;
        read_exact(&mut inner, &mut magic, "index magic")?;
        if &magic != INDEX_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut n_blocks_buf = [0u8; 8];
        read_exact(&mut inner, &mut n_blocks_buf, "index length")?;
        let n_blocks = u64_at(&n_blocks_buf, 0);
        // Each indexed block occupies at least MIN_BLOCK_BYTES of file.
        if n_blocks > footer_offset / MIN_BLOCK_BYTES {
            return Err(CodecError::CrcMismatch {
                what: "index length",
                block: 0,
            });
        }
        let mut body = vec![0u8; n_blocks as usize * 12 + 8];
        read_exact(&mut inner, &mut body, "index body")?;
        read_exact(&mut inner, &mut stored, "index crc")?;
        let mut crc = Crc32::new();
        crc.update(&n_blocks_buf);
        crc.update(&body);
        if crc.finish() != u32_at(&stored, 0) {
            return Err(CodecError::CrcMismatch {
                what: "index",
                block: 0,
            });
        }
        let mut index = Vec::with_capacity(n_blocks as usize);
        let mut indexed_ops = 0u64;
        for i in 0..n_blocks as usize {
            let entry = BlockEntry {
                offset: u64_at(&body, i * 12),
                n_ops: u32_at(&body, i * 12 + 8),
            };
            if entry.offset < data_start || entry.offset >= footer_offset {
                return Err(CodecError::CrcMismatch {
                    what: "index entry",
                    block: i as u64,
                });
            }
            indexed_ops += u64::from(entry.n_ops);
            index.push(entry);
        }
        let total_ops = u64_at(&body, n_blocks as usize * 12);
        if indexed_ops != total_ops {
            return Err(CodecError::CountMismatch {
                expected: total_ops,
                found: indexed_ops,
            });
        }

        Ok(TraceReader {
            inner,
            core_id,
            meta,
            index,
            total_ops,
            file_bytes,
            next_block: 0,
            payload: Vec::new(),
            pos: 0,
            ops_left: 0,
            state: CodecState::at(0, 0),
            payload_bytes_seen: 0,
        })
    }

    /// Core this trace was captured for.
    pub fn core_id(&self) -> u32 {
        self.core_id
    }

    /// The free-form metadata stored at capture time.
    pub fn meta(&self) -> &str {
        &self.meta
    }

    /// Total ops in the trace, per the (CRC-verified) index.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Number of blocks in the trace.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Loads block `idx` into the payload buffer, verifying its CRC and
    /// header against the index. Ops are *not* decoded here — decode is
    /// lazy, per [`next_op`](TraceReader::next_op).
    fn load_block(&mut self, idx: usize) -> Result<(), CodecError> {
        let entry = self.index[idx];
        let block = idx as u64;
        self.inner.seek(SeekFrom::Start(entry.offset))?;
        let mut header = [0u8; 24];
        read_exact(&mut self.inner, &mut header, "block header")?;
        let mut stored = [0u8; 4];
        read_exact(&mut self.inner, &mut stored, "block crc")?;
        let n_ops = u32_at(&header, 0);
        let payload_len = u32_at(&header, 4);
        let start_pc = u64_at(&header, 8);
        let start_data = u64_at(&header, 16);
        if entry.offset + 28 + u64::from(payload_len) > self.file_bytes {
            return Err(CodecError::Truncated {
                what: "block payload",
            });
        }
        self.payload.resize(payload_len as usize, 0);
        read_exact(&mut self.inner, &mut self.payload, "block payload")?;
        let mut crc = Crc32::new();
        crc.update(&header);
        crc.update(&self.payload);
        if crc.finish() != u32_at(&stored, 0) {
            return Err(CodecError::CrcMismatch {
                what: "block",
                block,
            });
        }
        if n_ops != entry.n_ops || (n_ops == 0 && payload_len != 0) {
            return Err(CodecError::CountMismatch {
                expected: u64::from(entry.n_ops),
                found: u64::from(n_ops),
            });
        }
        self.state = CodecState::at(start_pc, start_data);
        self.payload_bytes_seen += u64::from(payload_len);
        self.pos = 0;
        self.ops_left = n_ops;
        self.next_block = idx + 1;
        Ok(())
    }

    /// Returns the next op, or `None` at end of trace, decoding it
    /// directly from the current block's CRC-verified payload.
    #[inline]
    pub fn next_op(&mut self) -> Result<Option<TraceOp>, CodecError> {
        while self.ops_left == 0 {
            if self.next_block >= self.index.len() {
                return Ok(None);
            }
            let idx = self.next_block;
            self.load_block(idx)?;
        }
        let mut input = &self.payload[self.pos..];
        let op = codec::decode_op(&mut self.state, &mut input)?;
        self.pos = self.payload.len() - input.len();
        self.ops_left -= 1;
        if self.ops_left == 0 && self.pos != self.payload.len() {
            // Payload longer than its ops — the writer never produces this,
            // so surplus bytes mean the header lied despite a matching CRC.
            return Err(CodecError::CountMismatch {
                expected: self.payload.len() as u64,
                found: self.pos as u64,
            });
        }
        Ok(Some(op))
    }

    /// Repositions the stream at the first op of block `idx`.
    pub fn seek_to_block(&mut self, idx: usize) -> Result<(), CodecError> {
        if idx > self.index.len() {
            return Err(CodecError::CountMismatch {
                expected: self.index.len() as u64,
                found: idx as u64,
            });
        }
        self.payload.clear();
        self.pos = 0;
        self.ops_left = 0;
        self.next_block = idx;
        Ok(())
    }

    /// Rewinds to the first op.
    pub fn rewind(&mut self) -> Result<(), CodecError> {
        self.seek_to_block(0)
    }

    /// Reads every block and checks its CRC and index entry *without
    /// decoding ops*, then rewinds. Returns whole-file statistics.
    ///
    /// This runs at checksum speed (slicing-by-8, several bytes per
    /// cycle), so the harness can afford it before every replay. After it
    /// succeeds, streaming the trace can only fail through an I/O error or
    /// a CRC-valid-but-undecodable payload — the latter is impossible for
    /// writer-produced files, which is what lets a replay source treat
    /// decode as infallible.
    pub fn verify_blocks(&mut self) -> Result<StreamStats, CodecError> {
        self.rewind()?;
        self.payload_bytes_seen = 0;
        let mut ops = 0u64;
        for idx in 0..self.index.len() {
            self.load_block(idx)?;
            ops += u64::from(self.ops_left);
            self.ops_left = 0;
        }
        if ops != self.total_ops {
            return Err(CodecError::CountMismatch {
                expected: self.total_ops,
                found: ops,
            });
        }
        let stats = StreamStats {
            ops,
            blocks: self.index.len() as u64,
            payload_bytes: self.payload_bytes_seen,
            file_bytes: self.file_bytes,
        };
        self.rewind()?;
        Ok(stats)
    }

    /// Decodes the whole trace into `out` in one pass — the arena decode
    /// feeding [`ArenaSource`](crate::ArenaSource). Every block CRC is
    /// still verified (by [`load_block`](Self::load_block)) before its ops
    /// are surfaced, and the total is reconciled against the index, so
    /// this is as safe as `verify_blocks` + streaming decode while paying
    /// the codec exactly once per trace instead of once per replay.
    ///
    /// `out` is appended to (capacity is reserved up front) so callers can
    /// reuse one allocation across traces. Rewinds when done. Returns
    /// whole-file statistics.
    pub fn decode_all_into(&mut self, out: &mut Vec<TraceOp>) -> Result<StreamStats, CodecError> {
        self.rewind()?;
        self.payload_bytes_seen = 0;
        out.reserve(self.total_ops as usize);
        let mut ops = 0u64;
        while let Some(op) = self.next_op()? {
            out.push(op);
            ops += 1;
        }
        if ops != self.total_ops {
            return Err(CodecError::CountMismatch {
                expected: self.total_ops,
                found: ops,
            });
        }
        let stats = StreamStats {
            ops,
            blocks: self.index.len() as u64,
            payload_bytes: self.payload_bytes_seen,
            file_bytes: self.file_bytes,
        };
        self.rewind()?;
        Ok(stats)
    }

    /// Decodes every block, checking all CRCs and reconciling op counts
    /// against the index, then rewinds. Returns whole-file statistics.
    ///
    /// The deep variant of [`verify_blocks`](TraceReader::verify_blocks):
    /// additionally proves every payload byte decodes to an op. Used by
    /// tests and tools; the harness uses the cheap check.
    pub fn validate(&mut self) -> Result<StreamStats, CodecError> {
        self.rewind()?;
        self.payload_bytes_seen = 0;
        let mut ops = 0u64;
        while self.next_op()?.is_some() {
            ops += 1;
        }
        if ops != self.total_ops {
            return Err(CodecError::CountMismatch {
                expected: self.total_ops,
                found: ops,
            });
        }
        let stats = StreamStats {
            ops,
            blocks: self.index.len() as u64,
            payload_bytes: self.payload_bytes_seen,
            file_bytes: self.file_bytes,
        };
        self.rewind()?;
        Ok(stats)
    }
}
