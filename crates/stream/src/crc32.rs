//! Hand-rolled CRC-32 (IEEE 802.3, reflected) for block integrity.
//!
//! Chosen over a cryptographic hash deliberately: trace files guard against
//! *accidental* corruption (truncated writes, bit rot, concurrent writers),
//! not adversaries, and CRC-32 detects all single-bit and burst errors up
//! to 32 bits at a fraction of the cost. The tables are built at compile
//! time, so there is no runtime initialisation to synchronise.
//!
//! Uses the slicing-by-8 formulation: eight parallel table lookups absorb
//! eight bytes per step instead of one, which matters because replay
//! checksums every payload byte and must stay cheaper than regenerating
//! the stream through the walker.

/// Reflected polynomial for CRC-32 (IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 tables. `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` is the CRC contribution of byte `b` seen `k` positions
/// before the current word boundary.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32 over multiple byte slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Absorbs `bytes`, eight at a time.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xff) as usize]
                ^ TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published check values — the algorithm must match the standard so
    /// traces stay verifiable by external tools.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"some block payload bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip {byte}.{bit} undetected");
            }
        }
    }
}
