//! The shared memory system: unified L2 cache, off-chip bus, and the
//! prefetch install policy.

use ipsim_cache::{FillKind, InstallPolicy, SetAssocCache};
use ipsim_types::stats::CategoryCounts;
use ipsim_types::{Cycle, LineAddr, MemConfig, MissCategory};

use crate::bus::Bus;

/// Counters for the shared memory system.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Demand instruction accesses reaching the L2 (L1I misses).
    pub l2_instr_accesses: u64,
    /// Demand instruction misses in the L2, by transition category.
    pub l2_instr_misses: CategoryCounts,
    /// Demand data accesses reaching the L2 (L1D misses).
    pub l2_data_accesses: u64,
    /// Demand data misses in the L2.
    pub l2_data_misses: u64,
    /// Instruction-prefetch accesses reaching the L2.
    pub l2_prefetch_accesses: u64,
    /// Instruction-prefetch accesses missing the L2 (off-chip prefetches).
    pub l2_prefetch_misses: u64,
    /// Dirty L2 victims written back off-chip.
    pub writebacks: u64,
}

/// The shared L2 + memory + bus, visited by every core.
///
/// All latencies are returned as absolute completion times so callers can
/// overlap them against their own clocks; the bus serialises off-chip
/// transfers across cores.
#[derive(Debug)]
pub struct MemSystem {
    l2: SetAssocCache,
    bus: Bus,
    policy: InstallPolicy,
    l2_latency: Cycle,
    mem_latency: Cycle,
    stats: MemStats,
}

impl MemSystem {
    /// Creates the memory system from a configuration and an install
    /// policy for instruction prefetches.
    pub fn new(config: &MemConfig, policy: InstallPolicy) -> MemSystem {
        MemSystem {
            l2: SetAssocCache::new(config.l2),
            bus: Bus::new(config.line_transfer_cycles()),
            policy,
            l2_latency: config.l2_latency,
            mem_latency: config.mem_latency,
            stats: MemStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The underlying bus (diagnostics).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// The shared L2 cache (diagnostics / tests).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// The active install policy.
    pub fn policy(&self) -> InstallPolicy {
        self.policy
    }

    /// Resets statistics at the end of warm-up; cache and bus state are
    /// preserved.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.bus.reset_stats();
        self.l2.reset_stats();
    }

    /// Restores the state of a freshly built memory system of the same
    /// configuration: L2 emptied, bus idle, statistics zeroed (run-reuse
    /// reset; allocations kept).
    pub fn reset_cold(&mut self) {
        self.stats = MemStats::default();
        self.bus.reset_cold();
        self.l2.clear();
    }

    /// Total bus transfers (demand + prefetch + writeback).
    pub fn bus_transfers(&self) -> u64 {
        self.bus.transfers()
    }

    fn fill_l2(&mut self, line: LineAddr, kind: FillKind) {
        let victim = self.l2.fill(line, kind);
        self.writeback_victim(victim);
    }

    fn writeback_victim(&mut self, victim: Option<ipsim_cache::Evicted>) {
        if let Some(victim) = victim {
            if victim.dirty {
                // Dirty data evicted by the install: write it back,
                // consuming off-chip bandwidth.
                self.bus.occupy(0);
                self.stats.writebacks += 1;
            }
        }
    }

    /// A demand instruction fetch (an L1I miss) at local time `now`;
    /// returns the completion time. `category` attributes an L2 miss to its
    /// fetch-stream transition for the Figure 3 breakdowns.
    pub fn fetch_instr_line(
        &mut self,
        line: LineAddr,
        now: Cycle,
        category: MissCategory,
    ) -> Cycle {
        self.stats.l2_instr_accesses += 1;
        // Demand instruction fills always install in the L2; the fused
        // access classifies and installs in one pass over the set.
        let (access, victim) = self.l2.access_and_fill(line, false, Some(FillKind::Demand));
        if access.is_hit() {
            now + self.l2_latency
        } else {
            self.stats.l2_instr_misses[category] += 1;
            let ready = self.bus.request(now, self.mem_latency);
            self.writeback_victim(victim);
            ready
        }
    }

    /// An instruction prefetch at local time `now`; returns the completion
    /// time. Under [`InstallPolicy::BypassL2UntilUseful`] an off-chip
    /// prefetch is *not* installed in the L2.
    pub fn prefetch_instr_line(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.stats.l2_prefetch_accesses += 1;
        let fill = self
            .policy
            .installs_prefetch_in_l2()
            .then_some(FillKind::Prefetch);
        let (access, victim) = self.l2.access_and_fill(line, false, fill);
        if access.is_hit() {
            now + self.l2_latency
        } else {
            self.stats.l2_prefetch_misses += 1;
            let ready = self.bus.request(now, self.mem_latency);
            self.writeback_victim(victim);
            ready
        }
    }

    /// Installs a *used* prefetched line evicted from an L1I under the
    /// bypass policy (the paper's "install iff proven useful").
    pub fn install_useful_instr_line(&mut self, line: LineAddr) {
        if !self.l2.probe(line) {
            self.fill_l2(line, FillKind::Demand);
        }
    }

    /// Limit-study support: makes `line` L2-resident at zero cost and with
    /// no statistics impact (the miss is being "eliminated").
    pub fn ensure_instr_line_free(&mut self, line: LineAddr) {
        if !self.l2.probe(line) {
            self.fill_l2(line, FillKind::Demand);
        }
    }

    /// A demand data access (an L1D miss) at local time `now`; returns the
    /// completion time.
    pub fn access_data_line(&mut self, line: LineAddr, write: bool, now: Cycle) -> Cycle {
        self.stats.l2_data_accesses += 1;
        let (access, victim) = self.l2.access_and_fill(line, write, Some(FillKind::Demand));
        if access.is_hit() {
            now + self.l2_latency
        } else {
            self.stats.l2_data_misses += 1;
            let ready = self.bus.request(now, self.mem_latency);
            self.writeback_victim(victim);
            ready
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::MemConfig;

    fn mem(policy: InstallPolicy) -> MemSystem {
        MemSystem::new(&MemConfig::default_single_core(), policy)
    }

    #[test]
    fn instr_fetch_l2_hit_costs_l2_latency() {
        let mut m = mem(InstallPolicy::InstallBoth);
        let first = m.fetch_instr_line(LineAddr(5), 0, MissCategory::Sequential);
        assert!(first >= 400, "first access misses: {first}");
        let second = m.fetch_instr_line(LineAddr(5), 1000, MissCategory::Sequential);
        assert_eq!(second, 1025, "second access hits the L2");
        assert_eq!(m.stats().l2_instr_accesses, 2);
        assert_eq!(m.stats().l2_instr_misses.total(), 1);
    }

    #[test]
    fn miss_categories_are_recorded() {
        let mut m = mem(InstallPolicy::InstallBoth);
        m.fetch_instr_line(LineAddr(1), 0, MissCategory::Call);
        m.fetch_instr_line(LineAddr(2), 0, MissCategory::Call);
        m.fetch_instr_line(LineAddr(3), 0, MissCategory::Sequential);
        assert_eq!(m.stats().l2_instr_misses[MissCategory::Call], 2);
        assert_eq!(m.stats().l2_instr_misses[MissCategory::Sequential], 1);
    }

    #[test]
    fn prefetch_installs_in_l2_only_under_install_both() {
        let mut m = mem(InstallPolicy::InstallBoth);
        m.prefetch_instr_line(LineAddr(7), 0);
        assert!(m.l2().probe(LineAddr(7)));

        let mut m = mem(InstallPolicy::BypassL2UntilUseful);
        m.prefetch_instr_line(LineAddr(7), 0);
        assert!(!m.l2().probe(LineAddr(7)), "bypass policy must not install");
        assert_eq!(m.stats().l2_prefetch_misses, 1);
    }

    #[test]
    fn useful_eviction_install_is_idempotent() {
        let mut m = mem(InstallPolicy::BypassL2UntilUseful);
        m.install_useful_instr_line(LineAddr(9));
        m.install_useful_instr_line(LineAddr(9));
        assert!(m.l2().probe(LineAddr(9)));
    }

    #[test]
    fn data_accesses_tracked_separately() {
        let mut m = mem(InstallPolicy::InstallBoth);
        m.access_data_line(LineAddr(100), false, 0);
        m.access_data_line(LineAddr(100), true, 50);
        assert_eq!(m.stats().l2_data_accesses, 2);
        assert_eq!(m.stats().l2_data_misses, 1);
        assert_eq!(m.stats().l2_instr_accesses, 0);
    }

    #[test]
    fn contending_cores_queue_on_the_bus() {
        let mut m = mem(InstallPolicy::InstallBoth);
        let a = m.fetch_instr_line(LineAddr(1), 0, MissCategory::Sequential);
        let b = m.fetch_instr_line(LineAddr(2), 0, MissCategory::Sequential);
        assert!(b > a, "second off-chip fetch queues behind the first");
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut m = mem(InstallPolicy::InstallBoth);
        m.fetch_instr_line(LineAddr(1), 0, MissCategory::Sequential);
        m.reset_stats();
        assert_eq!(m.stats().l2_instr_accesses, 0);
        assert!(m.l2().probe(LineAddr(1)));
    }
}
