//! Run metrics: what a simulation reports.

use ipsim_core::PrefetchStats;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::Cycle;

use crate::branch::BranchStats;
use crate::memsys::MemStats;

/// Per-core results over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct CoreMetrics {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed on this core.
    pub cycles: Cycle,
    /// Instruction-line fetches (line transitions of the fetch PC).
    pub line_fetches: u64,
    /// L1I demand misses, by transition category.
    pub l1i_misses: CategoryCounts,
    /// L1I misses eliminated by a limit-study spec.
    pub eliminated_misses: u64,
    /// L1D demand accesses (loads + stores).
    pub l1d_accesses: u64,
    /// L1D demand misses.
    pub l1d_misses: u64,
    /// Branch-prediction statistics.
    pub branch: BranchStats,
    /// Prefetch pipeline statistics.
    pub prefetch: PrefetchStats,
}

impl CoreMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1I misses per retired instruction (the paper's "% per instruction"
    /// divided by 100).
    pub fn l1i_miss_per_instr(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1i_misses.total() as f64 / self.instructions as f64
        }
    }
}

/// Whole-system results over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct SystemMetrics {
    /// Per-core metrics.
    pub cores: Vec<CoreMetrics>,
    /// Shared memory-system counters.
    pub mem: MemStats,
    /// Off-chip line transfers during measurement.
    pub bus_transfers: u64,
    /// Cycles spent queueing for the bus during measurement.
    pub bus_queue_cycles: f64,
    /// Host wall-clock seconds spent inside the measured run (0 when the
    /// metrics were not produced by a timed entry point). Host-side
    /// observability only — no simulated quantity depends on it.
    pub sim_wall_seconds: f64,
}

impl SystemMetrics {
    /// Total instructions retired across cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Simulation speed in millions of simulated instructions per host
    /// wall-clock second (0 when the run was not timed). The kernel
    /// throughput number tracked by the bench snapshot and the harness
    /// runlog.
    pub fn sim_mips(&self) -> f64 {
        if self.sim_wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions() as f64 / 1e6 / self.sim_wall_seconds
        }
    }

    /// Aggregate throughput: the sum of per-core IPCs. For a single core
    /// this is simply its IPC; for a CMP it is the chip's instruction
    /// throughput per cycle.
    pub fn ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// L1I misses per instruction, aggregated over cores.
    pub fn l1i_miss_per_instr(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            0.0
        } else {
            self.l1i_miss_breakdown().total() as f64 / instrs as f64
        }
    }

    /// L1I miss breakdown by category, merged over cores.
    pub fn l1i_miss_breakdown(&self) -> CategoryCounts {
        let mut total = CategoryCounts::new();
        for c in &self.cores {
            total.merge(&c.l1i_misses);
        }
        total
    }

    /// L2 demand-instruction misses per instruction.
    pub fn l2_instr_miss_per_instr(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            0.0
        } else {
            self.mem.l2_instr_misses.total() as f64 / instrs as f64
        }
    }

    /// L2 instruction-miss breakdown by category.
    pub fn l2_instr_miss_breakdown(&self) -> &CategoryCounts {
        &self.mem.l2_instr_misses
    }

    /// L2 demand-data misses per instruction.
    pub fn l2_data_miss_per_instr(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            0.0
        } else {
            self.mem.l2_data_misses as f64 / instrs as f64
        }
    }

    /// L1D misses per instruction, aggregated over cores.
    pub fn l1d_miss_per_instr(&self) -> f64 {
        let instrs = self.instructions();
        if instrs == 0 {
            0.0
        } else {
            self.cores.iter().map(|c| c.l1d_misses).sum::<u64>() as f64 / instrs as f64
        }
    }

    /// Prefetch statistics merged over cores.
    pub fn prefetch(&self) -> PrefetchStats {
        let mut total = PrefetchStats::default();
        for c in &self.cores {
            total.merge(&c.prefetch);
        }
        total
    }

    /// Merged prefetch accuracy (Figure 9(i)).
    pub fn prefetch_accuracy(&self) -> f64 {
        self.prefetch().accuracy()
    }

    /// Speedup of `self` over a `baseline` run of the same workload
    /// (IPC ratio) — the metric of Figures 4, 6 and 8.
    pub fn speedup_over(&self, baseline: &SystemMetrics) -> f64 {
        let base = baseline.ipc();
        if base == 0.0 {
            0.0
        } else {
            self.ipc() / base
        }
    }

    /// Miss-rate ratio helpers for the normalised Figures 5 and 7.
    pub fn l1i_miss_ratio_vs(&self, baseline: &SystemMetrics) -> f64 {
        ratio(self.l1i_miss_per_instr(), baseline.l1i_miss_per_instr())
    }

    /// L2 instruction-miss rate relative to `baseline`.
    pub fn l2_instr_miss_ratio_vs(&self, baseline: &SystemMetrics) -> f64 {
        ratio(
            self.l2_instr_miss_per_instr(),
            baseline.l2_instr_miss_per_instr(),
        )
    }

    /// L2 data-miss rate relative to `baseline`.
    pub fn l2_data_miss_ratio_vs(&self, baseline: &SystemMetrics) -> f64 {
        ratio(
            self.l2_data_miss_per_instr(),
            baseline.l2_data_miss_per_instr(),
        )
    }

    /// Miss coverage relative to `baseline`: the fraction of baseline L1I
    /// misses this run eliminated (Figure 10).
    pub fn l1i_coverage_vs(&self, baseline: &SystemMetrics) -> f64 {
        1.0 - self.l1i_miss_ratio_vs(baseline)
    }

    /// L2 instruction-miss coverage relative to `baseline`.
    pub fn l2_instr_coverage_vs(&self, baseline: &SystemMetrics) -> f64 {
        1.0 - self.l2_instr_miss_ratio_vs(baseline)
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::MissCategory;

    fn core(instrs: u64, cycles: u64, misses: u64) -> CoreMetrics {
        let mut m = CoreMetrics {
            instructions: instrs,
            cycles,
            ..CoreMetrics::default()
        };
        m.l1i_misses[MissCategory::Sequential] = misses;
        m
    }

    #[test]
    fn ipc_is_sum_of_core_ipcs() {
        let m = SystemMetrics {
            cores: vec![core(100, 100, 0), core(100, 200, 0)],
            ..SystemMetrics::default()
        };
        assert!((m.ipc() - 1.5).abs() < 1e-12);
        assert_eq!(m.instructions(), 200);
    }

    #[test]
    fn miss_rates_aggregate_over_cores() {
        let m = SystemMetrics {
            cores: vec![core(100, 100, 2), core(100, 100, 4)],
            ..SystemMetrics::default()
        };
        assert!((m.l1i_miss_per_instr() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_coverage() {
        let base = SystemMetrics {
            cores: vec![core(100, 200, 10)],
            ..SystemMetrics::default()
        };
        let better = SystemMetrics {
            cores: vec![core(100, 100, 2)],
            ..SystemMetrics::default()
        };
        assert!((better.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert!((better.l1i_coverage_vs(&base) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let empty = SystemMetrics::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.l1i_miss_per_instr(), 0.0);
        assert_eq!(empty.speedup_over(&empty), 0.0);
    }
}
