//! One out-of-order core: fetch, branch prediction, data path and the
//! prefetch issue pipeline, in a cycle-accounting model.

use ipsim_cache::{Access, FillKind, Mshr, SetAssocCache};
use ipsim_core::{
    FetchEvent, PrefetchEngine, PrefetchQueue, PrefetchRequest, PrefetchStats, PrefetcherKind,
    RecentFetchFilter,
};
use ipsim_telemetry::{CoreTracer, PfEventKind};
use ipsim_types::addr::LineSize;
use ipsim_types::instr::OpKind;
use ipsim_types::stats::CategoryCounts;
use ipsim_types::{Addr, CoreConfig, Cycle, LineAddr, MissCategory, TraceOp};

use crate::branch::BranchUnit;
use crate::limit::LimitSpec;
use crate::memsys::MemSystem;
use crate::metrics::CoreMetrics;
use crate::mlp::MlpWindow;
use crate::pf_table::PfSourceTable;
use crate::tlb::Tlb;

/// Prefetch-queue slots per core (paper Section 5).
pub(crate) const PREFETCH_QUEUE_ENTRIES: usize = 32;
/// Recent-demand-fetch filter depth per core (paper Section 5).
pub(crate) const RECENT_FILTER_ENTRIES: usize = 32;
/// Tag-probe slots granted per fetch event while the front end is busy.
/// The paper notes that at an 8-wide fetch there is ample tag bandwidth for
/// filtered prefetch probing even when the core is not stalled.
const PROBES_PER_HIT_EVENT: usize = 8;
/// Tag-probe slots granted per missing fetch event (the stall leaves the
/// tags idle, so the queue can drain).
const PROBES_PER_MISS_EVENT: usize = 32;

/// One simulated core.
///
/// Driven one [`TraceOp`] at a time by [`System`](crate::System); owns its
/// private L1 caches, branch predictors, MSHRs and prefetch machinery, and
/// accounts its own clock. See the crate docs for the modelling rationale.
#[derive(Debug)]
pub struct Core {
    id: u32,
    issue_width: u32,
    line_size: LineSize,
    limit: Option<LimitSpec>,

    clock: Cycle,
    frac: u32,
    idx: u64,

    l1i: SetAssocCache,
    l1d: SetAssocCache,
    i_mshr: Mshr,
    d_mshr: Mshr,
    mlp: MlpWindow,
    branch: BranchUnit,
    itlb: Option<Tlb>,
    dtlb: Option<Tlb>,

    engine: Box<dyn PrefetchEngine>,
    /// Cached `engine.wants_lifecycle_hooks()`: lifecycle dispatch (and
    /// the attribution lookups feeding it) collapses to one never-taken
    /// branch per site for engines that don't consume it.
    engine_hooks: bool,
    /// Cached `!engine.generates_requests()`: with an engine that never
    /// emits a request the prefetch queue and filter are provably empty
    /// forever, so the per-fetch hook block is skipped wholesale.
    engine_inert: bool,
    queue: PrefetchQueue,
    filter: RecentFetchFilter,
    pf_sources: PfSourceTable,
    pf_stats: PrefetchStats,
    /// Lifecycle event collector; `None` (the default) keeps every
    /// telemetry hook down to one never-taken branch.
    tracer: Option<Box<CoreTracer>>,
    req_buf: Vec<PrefetchRequest>,
    retire_buf: Vec<ipsim_cache::MshrEntry>,

    /// Test hook: forces [`Core::step_block`] down the per-instruction
    /// path so the equivalence proptest can compare both paths.
    force_slow_path: bool,

    cur_line: Option<LineAddr>,
    prev_line: Option<LineAddr>,
    /// Miss category a fetch transition would be charged to, given the
    /// previously executed instruction. Precomputed each step so the
    /// fetch path reads one byte instead of re-classifying a stored op.
    prev_cat: MissCategory,

    // Measurement window baselines (set by reset_stats).
    start_clock: Cycle,
    start_idx: u64,
    line_fetches: u64,
    l1i_miss_cats: CategoryCounts,
    eliminated_misses: u64,
    l1d_accesses: u64,
    l1d_misses: u64,
}

impl Core {
    /// Creates a core with the given configuration, prefetcher and optional
    /// limit-study spec.
    pub fn new(
        id: u32,
        config: &CoreConfig,
        prefetcher: PrefetcherKind,
        limit: Option<LimitSpec>,
    ) -> Core {
        Core::with_engine(id, config, prefetcher.build(), limit)
    }

    /// Creates a core with a caller-provided prefetch engine — the hook for
    /// plugging in custom [`PrefetchEngine`] implementations (see the
    /// `custom_prefetcher` example).
    pub fn with_engine(
        id: u32,
        config: &CoreConfig,
        engine: Box<dyn PrefetchEngine>,
        limit: Option<LimitSpec>,
    ) -> Core {
        let engine_hooks = engine.wants_lifecycle_hooks();
        let engine_inert = !engine.generates_requests();
        Core {
            id,
            issue_width: config.issue_width,
            line_size: config.l1i.line(),
            limit,
            clock: 0,
            frac: 0,
            idx: 0,
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            i_mshr: Mshr::new(config.mshrs as usize),
            d_mshr: Mshr::new(config.mshrs as usize),
            mlp: MlpWindow::new(config.rob_entries as u64),
            branch: BranchUnit::new(&config.branch, config.pipeline_depth),
            itlb: config.tlb.enabled.then(|| Tlb::new(&config.tlb)),
            dtlb: config.tlb.enabled.then(|| Tlb::new(&config.tlb)),
            engine,
            engine_hooks,
            engine_inert,
            queue: PrefetchQueue::new(PREFETCH_QUEUE_ENTRIES),
            filter: RecentFetchFilter::new(RECENT_FILTER_ENTRIES),
            // An attribution is live only while its line sits in the
            // instruction MSHR or the L1I, so this bound cannot be
            // exceeded (the table panics if that invariant ever breaks).
            pf_sources: crate::pf_table::pf_source_table(
                config.l1i.lines() as usize + config.mshrs as usize,
            ),
            pf_stats: PrefetchStats::default(),
            tracer: None,
            req_buf: Vec::with_capacity(16),
            retire_buf: Vec::with_capacity(config.mshrs as usize),
            force_slow_path: false,
            cur_line: None,
            prev_line: None,
            prev_cat: MissCategory::Sequential,
            start_clock: 0,
            start_idx: 0,
            line_fetches: 0,
            l1i_miss_cats: CategoryCounts::new(),
            eliminated_misses: 0,
            l1d_accesses: 0,
            l1d_misses: 0,
        }
    }

    /// This core's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current local clock.
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// Instructions executed since construction.
    pub fn executed(&self) -> u64 {
        self.idx
    }

    /// The prefetch engine's display name.
    pub fn prefetcher_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Downcast access to engine-specific state — how the system layer
    /// reaches the prefetcher zoo's per-scheme counters. Plain engines
    /// return `None`.
    pub fn engine_any(&self) -> Option<&dyn std::any::Any> {
        self.engine.as_any()
    }

    /// Live prefetch attributions and the table's fixed slot count —
    /// diagnostics for the boundedness regression test. Live entries can
    /// never exceed `l1i_lines + mshr_entries` (the table panics if they
    /// would).
    #[doc(hidden)]
    pub fn pf_attribution_usage(&self) -> (usize, usize) {
        (self.pf_sources.len(), self.pf_sources.capacity())
    }

    /// Installs (or removes) the lifecycle event collector. Simulation
    /// behaviour is identical either way; only observation changes.
    pub fn set_tracer(&mut self, tracer: Option<Box<CoreTracer>>) {
        self.tracer = tracer;
    }

    /// The installed event collector, if any.
    pub fn tracer_mut(&mut self) -> Option<&mut CoreTracer> {
        self.tracer.as_deref_mut()
    }

    /// Current prefetch-queue occupancy (interval-sampler snapshot).
    pub fn pf_queue_waiting(&self) -> usize {
        self.queue.waiting()
    }

    /// Executes one instruction, advancing the local clock.
    pub fn step(&mut self, op: TraceOp, mem: &mut MemSystem) {
        self.idx += 1;

        // Issue-width base cost: 1/issue_width cycles per instruction.
        self.frac += 1;
        if self.frac >= self.issue_width {
            self.clock += 1;
            self.frac = 0;
        }

        // Instruction fetch at line granularity.
        let line = op.pc.line(self.line_size);
        if self.cur_line != Some(line) {
            self.fetch_line(line, mem);
            self.cur_line = Some(line);
        }

        // Branch prediction penalties.
        if matches!(op.kind, OpKind::Cti { .. }) {
            let penalty = self.branch.process(&op);
            self.clock += penalty as Cycle;
        }

        // Expose conditional branches' untaken paths to the engine
        // (wrong-path prefetching hook).
        // An inert engine's `on_cond_branch` appends nothing, so the whole
        // dispatch is a guaranteed no-op then.
        if let OpKind::Cti {
            class: ipsim_types::instr::CtiClass::CondBranch,
            taken,
            target,
        } = op.kind
        {
            if !self.engine_inert {
                let alternate = if taken {
                    op.pc.offset(ipsim_types::instr::INSTR_BYTES)
                } else {
                    target
                }
                .line(self.line_size);
                self.req_buf.clear();
                self.engine.on_cond_branch(alternate, &mut self.req_buf);
                if !self.req_buf.is_empty() {
                    self.enqueue_generated();
                    self.issue_prefetches(self.clock, 2, mem);
                }
            }
        }

        // Data path.
        match op.kind {
            OpKind::Load { addr } => self.do_load(addr, mem),
            OpKind::Store { addr } => self.do_store(addr, mem),
            _ => {}
        }

        // Honour the ROB window for outstanding data misses.
        self.clock = self.mlp.advance(self.idx, self.clock);

        self.prev_cat = if matches!(op.kind, OpKind::Cti { .. }) {
            MissCategory::from_transition(Some(&(op.pc, op.kind)))
        } else {
            MissCategory::Sequential
        };
    }

    /// Executes a block of instructions in order — exactly equivalent to
    /// calling [`Core::step`] on each. The scheduler pulls ops from a
    /// source a quantum at a time and hands them over here so the per-op
    /// path is all static calls.
    ///
    /// Maximal runs of plain (non-CTI, non-memory) instructions that stay
    /// inside the currently fetched line are advanced in one batched
    /// counter update instead of per-instruction calls — see
    /// [`Core::advance_straight_line`] for why that is *exactly* what
    /// [`Core::step`] would have computed. The equivalence is enforced by
    /// a property test driving random streams down both paths.
    pub fn step_block(&mut self, ops: &[TraceOp], mem: &mut MemSystem) {
        if self.force_slow_path {
            for &op in ops {
                self.step(op, mem);
            }
            return;
        }
        let mut i = 0;
        while i < ops.len() {
            // Fast path: while no data miss is outstanding (the MLP window
            // is a strict no-op then) count how many upcoming ops are plain
            // instructions fetching from the already-resident current line.
            if self.mlp.outstanding() == 0 {
                if let Some(cur) = self.cur_line {
                    let ls = self.line_size;
                    let plain = |op: &TraceOp| -> bool {
                        // Non-short-circuit `&`: both tests are branch-free
                        // and the compiler fuses four of them per iteration
                        // below into independent compare/AND trees.
                        matches!(op.kind, OpKind::Other) & (op.pc.line(ls) == cur)
                    };
                    let start = i;
                    // Only the *length* of the maximal plain-op prefix
                    // matters, not the order it is discovered in, so scan
                    // four ops per iteration and fall back to the per-op
                    // tail loop to pin down the exact boundary.
                    while i + 4 <= ops.len()
                        && (plain(&ops[i])
                            & plain(&ops[i + 1])
                            & plain(&ops[i + 2])
                            & plain(&ops[i + 3]))
                    {
                        i += 4;
                    }
                    while i < ops.len() && plain(&ops[i]) {
                        i += 1;
                    }
                    if i > start {
                        self.advance_straight_line((i - start) as u64);
                        continue;
                    }
                }
                // Express line transition: a plain op crossing into a
                // *resident* line with an inert engine. `step` for that op
                // is the issue-width/idx accounting plus `fetch_line`'s hit
                // arm; with an inert engine the hit arm is exactly the
                // bookkeeping below (the i-MSHR is provably empty, so the
                // drain is a no-op, and the whole prefetcher-hook block is
                // skipped anyway). `probe_demand_hit` changes nothing on a
                // miss, so falling through to the full `step` then counts
                // the access exactly once.
                if self.engine_inert && matches!(ops[i].kind, OpKind::Other) {
                    let line = ops[i].pc.line(self.line_size);
                    if let Some(first_use) = self.l1i.probe_demand_hit(line) {
                        debug_assert!(
                            self.i_mshr.is_empty(),
                            "inert engine must leave the i-MSHR empty"
                        );
                        self.line_fetches += 1;
                        if let Some(tlb) = &mut self.itlb {
                            self.clock += tlb.access(line.base(self.line_size));
                        }
                        if first_use {
                            // Unreachable with an inert engine (nothing is
                            // ever installed as a prefetch), but mirrored
                            // from `fetch_line` so the express arm stays a
                            // line-for-line transcription of the slow path.
                            self.note_useful(line, false);
                        }
                        self.cur_line = Some(line);
                        self.prev_line = Some(line);
                        self.advance_straight_line(1);
                        i += 1;
                        continue;
                    }
                }
            }
            self.step(ops[i], mem);
            i += 1;
        }
    }

    /// Batch-advances the core over `k` straight-line instructions within
    /// the current fetch line. Bit-for-bit what `k` calls to [`Core::step`]
    /// do for an [`OpKind::Other`] op whose PC stays in `cur_line` while no
    /// data miss is outstanding: each such step only increments `idx`, runs
    /// the issue-width accounting (`frac` stays `< issue_width`, so the
    /// per-op carry test is exactly the division below), skips the fetch
    /// (`cur_line` matches), skips branch/data paths (kind is `Other`),
    /// finds `mlp.advance` a no-op (nothing pending, and nothing can
    /// become pending without a load), and leaves `prev_cat` at
    /// `Sequential`. No telemetry hook fires on that path either, so the
    /// batch is exact with tracing enabled too.
    #[inline]
    fn advance_straight_line(&mut self, k: u64) {
        self.idx += k;
        let w = self.issue_width as u64;
        let total = self.frac as u64 + k;
        self.clock += total / w;
        self.frac = (total % w) as u32;
        self.prev_cat = MissCategory::Sequential;
    }

    /// Test hook: disables the batched straight-line fast path so
    /// [`Core::step_block`] replays the exact per-instruction sequence.
    #[doc(hidden)]
    pub fn set_force_slow_path(&mut self, force: bool) {
        self.force_slow_path = force;
    }

    /// Processes a fetch-stream transition to `line`.
    fn fetch_line(&mut self, line: LineAddr, mem: &mut MemSystem) {
        self.line_fetches += 1;
        if let Some(tlb) = &mut self.itlb {
            self.clock += tlb.access(line.base(self.line_size));
        }
        self.drain_i_mshr(mem);

        let category = self.prev_cat;
        let mut ev = FetchEvent {
            line,
            miss: false,
            first_use_of_prefetch: false,
            prev_line: self.prev_line,
        };
        let t0 = self.clock;

        match self.l1i.access(line) {
            Access::Hit {
                first_use_of_prefetch,
            } => {
                if first_use_of_prefetch {
                    self.note_useful(line, false);
                    ev.first_use_of_prefetch = true;
                }
            }
            Access::Miss => {
                ev.miss = true;
                if let Some(entry) = self.i_mshr.lookup(line).copied() {
                    // A fill (almost always a prefetch) is already in
                    // flight: stall only for the remaining latency.
                    self.l1i_miss_cats[category] += 1;
                    self.i_mshr.merge_demand(line);
                    if let Some(t) = &mut self.tracer {
                        if entry.prefetch {
                            if let Some(source) = self.pf_sources.get(line) {
                                t.emit(self.clock, line, source, PfEventKind::DemandWait);
                            }
                        }
                    }
                    self.clock = self.clock.max(entry.ready_at);
                    self.drain_i_mshr(mem);
                    if self.l1i.access(line).is_hit() && entry.prefetch {
                        // Late but useful prefetch: counts as a first use
                        // for tagging and accuracy.
                        self.note_useful(line, true);
                        ev.first_use_of_prefetch = true;
                    }
                } else if self.limit.as_ref().is_some_and(|l| l.eliminates(category)) {
                    // Limit study: the miss is eliminated outright.
                    self.eliminated_misses += 1;
                    self.install_l1i(line, FillKind::Demand, mem);
                    mem.ensure_instr_line_free(line);
                } else {
                    // Full miss: the front end stalls for the entire
                    // remaining latency (L2 hit or memory).
                    self.l1i_miss_cats[category] += 1;
                    let ready = mem.fetch_instr_line(line, t0, category);
                    self.clock = self.clock.max(ready);
                    self.install_l1i(line, FillKind::Demand, mem);
                }
            }
        }

        // Prefetcher hooks: demand fetches invalidate matching queued
        // prefetches and feed the filter; the engine then generates new
        // requests, which are filtered and queued. With an inert engine
        // the queue and filter are provably empty forever and no counter
        // in this block can move, so the whole block is skipped.
        if !self.engine_inert {
            self.queue.on_demand_fetch(line);
            self.filter.record(line);
            self.req_buf.clear();
            self.engine.on_fetch(&ev, &mut self.req_buf);
            self.enqueue_generated();

            // Issue prefetches with the *pre-stall* timestamp: during a
            // demand stall the tags and bus are otherwise idle, which is
            // exactly when the queue drains (and what makes prefetches
            // timely).
            let budget = if ev.miss {
                PROBES_PER_MISS_EVENT
            } else {
                PROBES_PER_HIT_EVENT
            };
            self.issue_prefetches(t0, budget, mem);
        }

        self.prev_line = Some(line);
    }

    /// Filters and enqueues the requests currently in `req_buf`.
    fn enqueue_generated(&mut self) {
        self.pf_stats.generated += self.req_buf.len() as u64;
        let mut accepted = 0u64;
        // Drain req_buf by index to avoid borrowing across the queue calls.
        for i in 0..self.req_buf.len() {
            let req = self.req_buf[i];
            if self.filter.contains(req.line) {
                self.pf_stats.filtered_recent += 1;
                if let Some(t) = &mut self.tracer {
                    t.emit(self.clock, req.line, req.source, PfEventKind::Filtered);
                }
            } else {
                self.queue.push(req);
                accepted += 1;
                if let Some(t) = &mut self.tracer {
                    t.emit(self.clock, req.line, req.source, PfEventKind::Queued);
                }
            }
        }
        self.pf_stats.queued += accepted;
    }

    /// Grants up to `budget` tag-probe slots to the prefetch queue at local
    /// time `now`.
    fn issue_prefetches(&mut self, now: Cycle, budget: usize, mem: &mut MemSystem) {
        for _ in 0..budget {
            if self.i_mshr.is_full() {
                // No fill resources: prefetches stay in the queue until
                // resources free up (the paper's "reside in the prefetch
                // queue until resources are available").
                self.pf_stats.mshr_rejected += 1;
                break;
            }
            let Some(req) = self.queue.pop_issue() else {
                break;
            };
            self.pf_stats.probes += 1;
            if self.l1i.probe(req.line) {
                self.pf_stats.probe_hits += 1;
                if let Some(t) = &mut self.tracer {
                    t.emit(now, req.line, req.source, PfEventKind::DropResident);
                }
                continue;
            }
            if self.i_mshr.lookup(req.line).is_some() {
                self.pf_stats.inflight_hits += 1;
                if let Some(t) = &mut self.tracer {
                    t.emit(now, req.line, req.source, PfEventKind::DropInflight);
                }
                continue;
            }
            let ready = mem.prefetch_instr_line(req.line, now);
            self.i_mshr.insert(req.line, ready, true);
            self.pf_sources.insert(req.line, req.source);
            if self.engine_hooks {
                self.engine.on_prefetch_issued(&req);
            }
            self.pf_stats.issued += 1;
            if let Some(t) = &mut self.tracer {
                t.emit(now, req.line, req.source, PfEventKind::Issued);
            }
        }
    }

    /// Retires completed instruction fills into the L1I.
    fn drain_i_mshr(&mut self, mem: &mut MemSystem) {
        if self.i_mshr.none_ready(self.clock) {
            return;
        }
        let mut retired = std::mem::take(&mut self.retire_buf);
        retired.clear();
        self.i_mshr.retire_ready_into(self.clock, &mut retired);
        for entry in retired.iter().copied() {
            let kind = if entry.prefetch && !entry.demand_merged {
                FillKind::Prefetch
            } else {
                FillKind::Demand
            };
            if entry.prefetch && (self.engine_hooks || self.tracer.is_some()) {
                if let Some(source) = self.pf_sources.get(entry.line) {
                    if self.engine_hooks {
                        self.engine.on_prefetch_fill(entry.line, source);
                    }
                    if let Some(t) = &mut self.tracer {
                        // Stamped with the fill's ready time, not the
                        // (possibly later) cycle the core noticed it.
                        t.emit(entry.ready_at, entry.line, source, PfEventKind::Fill);
                    }
                }
            }
            if entry.prefetch && entry.demand_merged && mem.policy().installs_on_useful_eviction() {
                // A demand fetch merged with this prefetch while it was in
                // flight: the prefetch is proven useful, so under the
                // bypass policy the line is installed into the L2 now
                // (it behaves like the demand miss it absorbed).
                mem.install_useful_instr_line(entry.line);
                if let Some(t) = &mut self.tracer {
                    if let Some(source) = self.pf_sources.get(entry.line) {
                        t.emit(entry.ready_at, entry.line, source, PfEventKind::L2Install);
                    }
                }
            }
            self.install_l1i(entry.line, kind, mem);
        }
        self.retire_buf = retired;
    }

    /// Installs a line into the L1I, applying the selective L2-install
    /// policy to the evicted victim.
    fn install_l1i(&mut self, line: LineAddr, kind: FillKind, mem: &mut MemSystem) {
        if let Some(victim) = self.l1i.fill(line, kind) {
            if victim.prefetched && victim.used && mem.policy().installs_on_useful_eviction() {
                // The paper's scheme: a prefetched line proves itself by
                // being used; install it in the L2 when the L1I evicts it.
                mem.install_useful_instr_line(victim.line);
                if let Some(t) = &mut self.tracer {
                    if let Some(source) = self.pf_sources.get(victim.line) {
                        t.emit(self.clock, victim.line, source, PfEventKind::L2Install);
                    }
                }
            }
            // The attribution lives exactly as long as the line does (in
            // the MSHR or the L1I), so eviction is where it is reclaimed
            // — and where the prefetch is finally classified used/unused.
            if let Some(source) = self.pf_sources.remove(victim.line) {
                // An attributed victim without the prefetch flag is a
                // demand-merged fill — demand-referenced by definition,
                // so it evicts as used.
                let used = victim.used || !victim.prefetched;
                if let Some(t) = &mut self.tracer {
                    let kind = if used {
                        PfEventKind::EvictUsed
                    } else {
                        PfEventKind::EvictUnused
                    };
                    t.emit(self.clock, victim.line, source, kind);
                }
                if self.engine_hooks {
                    self.engine.on_prefetch_evicted(victim.line, source, used);
                }
                if victim.prefetched && !victim.used {
                    self.engine.on_prefetch_useless(victim.line, source);
                }
            }
        }
    }

    /// Records that a prefetched line was demand-referenced.
    fn note_useful(&mut self, line: LineAddr, late: bool) {
        self.pf_stats.useful += 1;
        if late {
            self.pf_stats.late += 1;
        }
        // `get`, not `remove`: the attribution stays live until the line
        // leaves the L1I so its eviction can still be classified per
        // component (the engine callback fires once either way, because a
        // cache line's first-use flag fires once).
        if let Some(source) = self.pf_sources.get(line) {
            self.engine.on_prefetch_useful(line, source);
            if self.engine_hooks {
                self.engine.on_prefetch_first_use(line, source, late);
            }
            if let Some(t) = &mut self.tracer {
                let kind = if late {
                    PfEventKind::FirstUseLate
                } else {
                    PfEventKind::FirstUse
                };
                t.emit(self.clock, line, source, kind);
            }
        }
    }

    #[inline]
    fn do_load(&mut self, addr: Addr, mem: &mut MemSystem) {
        self.l1d_accesses += 1;
        if let Some(tlb) = &mut self.dtlb {
            self.clock += tlb.access(addr);
        }
        self.drain_d_mshr();
        let line = addr.line(self.line_size);
        if self.l1d.access(line).is_hit() {
            return;
        }
        self.l1d_misses += 1;
        let ready = if let Some(r) = self.d_mshr.merge_demand(line) {
            r
        } else {
            if self.d_mshr.is_full() {
                // No MSHR available: stall until the oldest fill lands.
                let t = self.d_mshr.next_ready_at().expect("full MSHR has entries");
                self.clock = self.clock.max(t);
                self.drain_d_mshr();
            }
            let r = mem.access_data_line(line, false, self.clock);
            self.d_mshr.insert(line, r, false);
            r
        };
        self.mlp.note_miss(self.idx, ready);
    }

    #[inline]
    fn do_store(&mut self, addr: Addr, mem: &mut MemSystem) {
        self.l1d_accesses += 1;
        if let Some(tlb) = &mut self.dtlb {
            self.clock += tlb.access(addr);
        }
        self.drain_d_mshr();
        let line = addr.line(self.line_size);
        if self.l1d.access_write(line).is_hit() {
            return;
        }
        self.l1d_misses += 1;
        // Stores retire through the store buffer: write-allocate without
        // stalling, unless no MSHR is free (then the store is simply
        // merged/dropped — a store buffer would hold it).
        if let Some(_r) = self.d_mshr.merge_demand(line) {
            return;
        }
        if !self.d_mshr.is_full() {
            let r = mem.access_data_line(line, true, self.clock);
            self.d_mshr.insert(line, r, false);
        }
    }

    /// Retires completed data fills into the L1D.
    #[inline]
    fn drain_d_mshr(&mut self) {
        if self.d_mshr.none_ready(self.clock) {
            return;
        }
        let mut retired = std::mem::take(&mut self.retire_buf);
        retired.clear();
        self.d_mshr.retire_ready_into(self.clock, &mut retired);
        for entry in retired.iter().copied() {
            self.l1d.fill(entry.line, FillKind::Demand);
        }
        self.retire_buf = retired;
    }

    /// Resets measurement counters (end of warm-up); microarchitectural
    /// state — caches, predictors, tables — is preserved.
    pub fn reset_stats(&mut self) {
        self.start_clock = self.clock;
        self.start_idx = self.idx;
        self.line_fetches = 0;
        self.l1i_miss_cats = CategoryCounts::new();
        self.eliminated_misses = 0;
        self.l1d_accesses = 0;
        self.l1d_misses = 0;
        self.pf_stats = PrefetchStats::default();
        self.engine.reset_window_stats();
        if let Some(t) = &mut self.tracer {
            // Warm-up events are not part of the measurement window.
            t.clear();
        }
        self.branch.reset_stats();
        if let Some(t) = &mut self.itlb {
            t.reset_stats();
        }
        if let Some(t) = &mut self.dtlb {
            t.reset_stats();
        }
        self.l1i.reset_stats();
        self.l1d.reset_stats();
    }

    /// Restores the state of a freshly built core, reusing every
    /// allocation: caches, MSHRs, predictors, prefetch machinery, clocks
    /// and counters all return to their post-construction values. The
    /// prefetch engine is stateful and trait-boxed, so the caller supplies
    /// a freshly built one (the system layer keeps the build recipe).
    ///
    /// Equivalence with a fresh core is load-bearing — the harness reuses
    /// one system across sweep runs — and is enforced by a reuse-vs-fresh
    /// test at the system level.
    pub fn reset_cold(&mut self, engine: Box<dyn PrefetchEngine>) {
        self.clock = 0;
        self.frac = 0;
        self.idx = 0;
        self.l1i.clear();
        self.l1d.clear();
        self.i_mshr.clear();
        self.d_mshr.clear();
        self.mlp.clear();
        self.branch.reset_cold();
        if let Some(t) = &mut self.itlb {
            t.reset_cold();
        }
        if let Some(t) = &mut self.dtlb {
            t.reset_cold();
        }
        self.engine_hooks = engine.wants_lifecycle_hooks();
        self.engine_inert = !engine.generates_requests();
        self.engine = engine;
        self.queue.clear();
        self.filter.clear();
        self.pf_sources.clear();
        self.pf_stats = PrefetchStats::default();
        self.tracer = None;
        self.req_buf.clear();
        self.retire_buf.clear();
        self.cur_line = None;
        self.prev_line = None;
        self.prev_cat = MissCategory::Sequential;
        self.start_clock = 0;
        self.start_idx = 0;
        self.line_fetches = 0;
        self.l1i_miss_cats = CategoryCounts::new();
        self.eliminated_misses = 0;
        self.l1d_accesses = 0;
        self.l1d_misses = 0;
    }

    /// Metrics over the current measurement window.
    pub fn metrics(&self) -> CoreMetrics {
        CoreMetrics {
            instructions: self.idx - self.start_idx,
            cycles: self.clock - self.start_clock,
            line_fetches: self.line_fetches,
            l1i_misses: self.l1i_miss_cats,
            eliminated_misses: self.eliminated_misses,
            l1d_accesses: self.l1d_accesses,
            l1d_misses: self.l1d_misses,
            branch: *self.branch.stats(),
            prefetch: self.pf_stats,
        }
    }
}
