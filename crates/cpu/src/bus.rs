//! The shared off-chip bus: a bandwidth-limited transfer queue.

use ipsim_types::Cycle;

/// Models off-chip bandwidth as a single shared channel: each cache-line
/// transfer occupies the channel for `transfer_cycles` (64 B at 10 GB/s on a
/// 3 GHz core is 19.2 cycles; 9.6 at 20 GB/s), and transfers queue behind
/// one another. Memory latency is added on top of the queueing delay, so a
/// burst of prefetches visibly delays subsequent demand misses.
///
/// # Examples
///
/// ```
/// use ipsim_cpu::Bus;
///
/// let mut bus = Bus::new(19.2);
/// let first = bus.request(0, 400);
/// let second = bus.request(0, 400);
/// assert!(second > first, "the second transfer queued behind the first");
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    next_free: f64,
    transfer_cycles: f64,
    transfers: u64,
    queue_cycles: f64,
}

impl Bus {
    /// Creates a bus where each line transfer takes `transfer_cycles` bus
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `transfer_cycles` is not positive and finite.
    pub fn new(transfer_cycles: f64) -> Bus {
        assert!(
            transfer_cycles > 0.0 && transfer_cycles.is_finite(),
            "transfer cycles must be positive"
        );
        Bus {
            next_free: 0.0,
            transfer_cycles,
            transfers: 0,
            queue_cycles: 0.0,
        }
    }

    /// Requests a line transfer at local time `now`; returns the cycle at
    /// which the line arrives (`queueing + mem_latency + transfer`).
    pub fn request(&mut self, now: Cycle, mem_latency: Cycle) -> Cycle {
        let start = (now as f64).max(self.next_free);
        self.queue_cycles += start - now as f64;
        self.next_free = start + self.transfer_cycles;
        self.transfers += 1;
        (start + mem_latency as f64 + self.transfer_cycles).ceil() as Cycle
    }

    /// Occupies the bus for one transfer without a completion (eviction
    /// writebacks).
    pub fn occupy(&mut self, now: Cycle) {
        let start = (now as f64).max(self.next_free);
        self.next_free = start + self.transfer_cycles;
        self.transfers += 1;
    }

    /// Total line transfers so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles requests spent queueing behind earlier transfers.
    pub fn queue_cycles(&self) -> f64 {
        self.queue_cycles
    }

    /// Resets counters (not the channel state) at the end of warm-up.
    pub fn reset_stats(&mut self) {
        self.transfers = 0;
        self.queue_cycles = 0.0;
    }

    /// Resets the channel itself as well as the counters — the state of a
    /// freshly built bus (run-reuse reset).
    pub fn reset_cold(&mut self) {
        self.next_free = 0.0;
        self.transfers = 0;
        self.queue_cycles = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_request_takes_latency_plus_transfer() {
        let mut b = Bus::new(19.2);
        let ready = b.request(100, 400);
        assert_eq!(ready, (100.0_f64 + 400.0 + 19.2).ceil() as u64);
        assert_eq!(b.transfers(), 1);
        assert_eq!(b.queue_cycles(), 0.0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut b = Bus::new(10.0);
        let a = b.request(0, 400);
        let c = b.request(0, 400);
        assert_eq!(a, 410);
        assert_eq!(c, 420, "queued 10 cycles behind the first");
        assert_eq!(b.queue_cycles(), 10.0);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut b = Bus::new(10.0);
        b.request(0, 400);
        let later = b.request(1000, 400);
        assert_eq!(later, 1410);
        assert_eq!(b.queue_cycles(), 0.0);
    }

    #[test]
    fn occupy_delays_subsequent_requests() {
        let mut b = Bus::new(10.0);
        b.occupy(0);
        let r = b.request(0, 400);
        assert_eq!(r, 420);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_transfer_cycles_panics() {
        Bus::new(0.0);
    }
}
