//! The `ipsim` CMP timing simulator.
//!
//! A trace-driven, cycle-*accounting* model of the paper's evaluation
//! platform: one or four out-of-order cores (8-wide fetch, 3-wide issue,
//! 64-entry ROB, 16-stage pipeline) with private 32 KB L1 instruction/data
//! caches, a shared unified 2 MB L2, 400-cycle memory and a bandwidth-
//! limited off-chip bus (10 GB/s single core / 20 GB/s CMP at 3 GHz).
//!
//! Modelling approach (see `DESIGN.md` for the full rationale):
//!
//! * **Instruction misses stall the front end** for their full remaining
//!   latency — the paper's central premise. In-flight prefetches absorb
//!   part or all of that latency (timeliness is modelled with real
//!   completion timestamps in MSHRs).
//! * **Data misses partially overlap**: a sliding ROB-sized window bounds
//!   how far execution runs ahead of an outstanding load miss
//!   (memory-level-parallelism model) instead of tracking register
//!   dependencies.
//! * **Branch prediction is real**: a gshare predictor, a direct-mapped
//!   tagless BTB and a return-address stack produce pipeline-restart
//!   penalties.
//! * **Off-chip bandwidth is a shared queue**: every line transfer occupies
//!   the bus, so inaccurate prefetches delay demand misses — the effect
//!   behind the accuracy/coverage trade-off of Figure 9.
//! * **Cores interleave deterministically**: the simulator always advances
//!   the core with the smallest local clock, so shared-L2 and bus
//!   interference are modelled without a global cycle loop.
//!
//! # Examples
//!
//! ```
//! use ipsim_cpu::{SystemBuilder, WorkloadSet};
//! use ipsim_core::PrefetcherKind;
//! use ipsim_trace::Workload;
//!
//! // A quick single-core run of the Web workload with the paper's
//! // discontinuity prefetcher.
//! let mut system = SystemBuilder::single_core()
//!     .prefetcher(PrefetcherKind::discontinuity_default())
//!     .build()?;
//! let metrics = system.run_workload(&WorkloadSet::homogeneous(Workload::Web), 10_000, 50_000);
//! assert!(metrics.ipc() > 0.0);
//! # Ok::<(), ipsim_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod bus;
mod core_model;
mod limit;
mod memsys;
mod metrics;
mod mlp;
mod pf_table;
mod system;
mod tlb;

pub use branch::{BranchStats, BranchUnit};
pub use bus::Bus;
pub use core_model::Core;
pub use limit::LimitSpec;
pub use memsys::{MemStats, MemSystem};
pub use metrics::{CoreMetrics, SystemMetrics};
pub use mlp::MlpWindow;
pub use system::{OpSource, System, SystemBuilder, WorkloadSet};
pub use tlb::{Tlb, TlbStats};
