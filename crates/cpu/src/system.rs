//! The full system: N cores over a shared memory system, plus the builder
//! and the workload-assignment helper.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_prefetch::{SchemeCounters, Zoo, ZooPlan};
use ipsim_telemetry::{
    CoreTracer, SampleRow, Sampler, TelemetryConfig, TelemetryRun, ZooSchemeRow,
};
use ipsim_trace::{Program, TraceWalker, Workload};
use ipsim_types::{ConfigError, SystemConfig, TraceOp};

use crate::core_model::Core;
use crate::limit::LimitSpec;
use crate::memsys::MemSystem;
use crate::metrics::SystemMetrics;

use ipsim_types::config::MAX_SCHED_QUANTUM;

/// Anything that can feed a core one instruction at a time.
///
/// This is `ipsim_stream::TraceSource` re-exported under its historical
/// name: the same trait drives live walkers, capture tees and trace
/// replay, so anything the harness wires up plugs straight into
/// [`System::run`].
pub use ipsim_stream::TraceSource as OpSource;

/// Which workload each core runs.
///
/// * [`WorkloadSet::homogeneous`] — every core runs the same application
///   (same binary, different transaction mixes), the paper's per-app CMP
///   configuration;
/// * [`WorkloadSet::mixed`] — one application per core, the paper's
///   multiprogrammed "Mix".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSet {
    /// Workload for core `i` (`per_core[i % per_core.len()]`).
    pub per_core: Vec<Workload>,
    /// Seed for static program synthesis (one program per distinct
    /// workload).
    pub program_seed: u64,
    /// Base seed for per-core walkers.
    pub walker_seed: u64,
}

impl WorkloadSet {
    /// Every core runs `workload`.
    pub fn homogeneous(workload: Workload) -> WorkloadSet {
        WorkloadSet {
            per_core: vec![workload],
            program_seed: 0x5EED_0001,
            walker_seed: 0x5EED_1001,
        }
    }

    /// The paper's multiprogrammed mix: DB, TPC-W, jApp and Web, one per
    /// core.
    pub fn mixed() -> WorkloadSet {
        WorkloadSet {
            per_core: Workload::ALL.to_vec(),
            program_seed: 0x5EED_0001,
            walker_seed: 0x5EED_1001,
        }
    }

    /// Display name ("DB", "Mixed", …).
    pub fn name(&self) -> String {
        if self.per_core.len() == 1 {
            self.per_core[0].name().to_string()
        } else {
            "Mixed".to_string()
        }
    }

    /// The workload core `i` runs.
    pub fn workload_for_core(&self, core: u32) -> Workload {
        self.per_core[core as usize % self.per_core.len()]
    }

    /// Synthesises one program per *distinct* workload across the first
    /// `n_cores` cores (cores running the same app share the binary, hence
    /// share code lines in the L2).
    pub fn programs(&self, n_cores: u32) -> Vec<(Workload, Program)> {
        let mut distinct: Vec<Workload> = Vec::new();
        for c in 0..n_cores {
            let w = self.workload_for_core(c);
            if !distinct.contains(&w) {
                distinct.push(w);
            }
        }
        distinct
            .into_iter()
            .map(|w| (w, w.build_program(self.program_seed)))
            .collect()
    }

    /// The walker that feeds core `core`, over programs built by
    /// [`WorkloadSet::programs`].
    ///
    /// This is *the* definition of a core's instruction stream: capture in
    /// the harness and live generation in [`System::run_workload`] both
    /// build walkers here, which is what guarantees a stored trace replays
    /// the exact stream a live run would generate.
    pub fn walker<'p>(&self, programs: &'p [(Workload, Program)], core: u32) -> TraceWalker<'p> {
        let w = self.workload_for_core(core);
        let prog = &programs
            .iter()
            .find(|(pw, _)| *pw == w)
            .expect("program built for workload")
            .1;
        TraceWalker::new(
            prog,
            w.profile(),
            core,
            self.walker_seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Builds a [`System`].
///
/// # Examples
///
/// ```
/// use ipsim_cpu::SystemBuilder;
/// use ipsim_core::PrefetcherKind;
/// use ipsim_cache::InstallPolicy;
///
/// let system = SystemBuilder::cmp4()
///     .prefetcher(PrefetcherKind::discontinuity_default())
///     .install_policy(InstallPolicy::BypassL2UntilUseful)
///     .build()?;
/// assert_eq!(system.n_cores(), 4);
/// # Ok::<(), ipsim_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    prefetcher: PrefetcherKind,
    zoo: Option<ZooPlan>,
    policy: InstallPolicy,
    limit: Option<LimitSpec>,
}

impl SystemBuilder {
    /// Starts from an explicit configuration.
    pub fn new(config: SystemConfig) -> SystemBuilder {
        SystemBuilder {
            config,
            prefetcher: PrefetcherKind::None,
            zoo: None,
            policy: InstallPolicy::InstallBoth,
            limit: None,
        }
    }

    /// The paper's single-core baseline (private 2 MB L2, 10 GB/s).
    pub fn single_core() -> SystemBuilder {
        SystemBuilder::new(SystemConfig::single_core())
    }

    /// The paper's 4-way CMP (shared 2 MB L2, 20 GB/s).
    pub fn cmp4() -> SystemBuilder {
        SystemBuilder::new(SystemConfig::cmp4())
    }

    /// Sets the per-core instruction prefetcher.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> SystemBuilder {
        self.prefetcher = kind;
        self
    }

    /// Runs a prefetcher zoo (every scheme in `plan`, side by side with
    /// shadow attribution) on each core instead of a single
    /// [`PrefetcherKind`]. Takes precedence over [`SystemBuilder::prefetcher`].
    pub fn zoo(mut self, plan: ZooPlan) -> SystemBuilder {
        self.zoo = Some(plan);
        self
    }

    /// Sets the L2 install policy for instruction prefetches.
    pub fn install_policy(mut self, policy: InstallPolicy) -> SystemBuilder {
        self.policy = policy;
        self
    }

    /// Enables a limit-study run (perfect elimination of chosen miss
    /// classes).
    pub fn limit(mut self, spec: LimitSpec) -> SystemBuilder {
        self.limit = Some(spec);
        self
    }

    /// Replaces the L1 instruction-cache geometry (Figure 1 sweeps).
    pub fn l1i_cache(mut self, cache: ipsim_types::CacheConfig) -> SystemBuilder {
        self.config.core.l1i = cache;
        self
    }

    /// Replaces the shared L2 geometry (Figure 2 sweeps).
    pub fn l2_cache(mut self, cache: ipsim_types::CacheConfig) -> SystemBuilder {
        self.config.mem.l2 = cache;
        self
    }

    /// Access to the full configuration for less common overrides.
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.config
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration fails validation
    /// (see [`SystemConfig::validate`]).
    pub fn build(self) -> Result<System, ConfigError> {
        self.config.validate()?;
        let cores = (0..self.config.n_cores)
            .map(|id| match &self.zoo {
                Some(plan) => {
                    // Zoo attributions live exactly as long as the core's
                    // own line→source attributions, so share its bound.
                    let bound =
                        self.config.core.l1i.lines() as usize + self.config.core.mshrs as usize;
                    Core::with_engine(
                        id,
                        &self.config.core,
                        Box::new(plan.build(bound)),
                        self.limit,
                    )
                }
                None => Core::new(id, &self.config.core, self.prefetcher, self.limit),
            })
            .collect();
        Ok(System {
            cores,
            mem: MemSystem::new(&self.config.mem, self.policy),
            // The engine build recipe is kept so `reset_cold` can hand
            // every core a freshly built engine without the caller.
            prefetcher: self.prefetcher,
            zoo: self.zoo,
            config: self.config,
            telemetry: None,
        })
    }
}

/// Interval-sampling state, present only while telemetry is enabled.
#[derive(Debug)]
struct TelemetryState {
    config: TelemetryConfig,
    sampler: Sampler,
}

/// N cores over one shared memory system.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    mem: MemSystem,
    config: SystemConfig,
    /// Engine build recipe (see [`SystemBuilder::build`]): what
    /// [`System::reset_cold`] rebuilds per-core engines from.
    prefetcher: PrefetcherKind,
    zoo: Option<ZooPlan>,
    telemetry: Option<TelemetryState>,
}

impl System {
    /// Number of cores.
    pub fn n_cores(&self) -> u32 {
        self.cores.len() as u32
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The shared memory system (diagnostics / tests).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Turns telemetry collection on: every core gets a lifecycle event
    /// collector and the scheduler starts interval sampling. Simulated
    /// behaviour — metrics, figures, cycle counts — is identical with or
    /// without it (guarded by the golden-hash and determinism tests).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        for core in &mut self.cores {
            core.set_tracer(Some(Box::new(CoreTracer::new(&config))));
        }
        let executed: Vec<u64> = self.cores.iter().map(Core::executed).collect();
        self.telemetry = Some(TelemetryState {
            sampler: Sampler::new(config.interval, &executed),
            config,
        });
    }

    /// Whether telemetry collection is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Drains everything telemetry collected over the current
    /// measurement window. Collection stays enabled (and empty) after
    /// the call; returns `None` when telemetry was never enabled.
    ///
    /// A final snapshot of each core is appended to the samples so even
    /// a window shorter than one interval yields one row per core.
    pub fn take_telemetry(&mut self) -> Option<TelemetryRun> {
        let state = self.telemetry.as_mut()?;
        let mut samples = state.sampler.take_rows();
        for (i, core) in self.cores.iter().enumerate() {
            samples.push(Self::sample_core(i, core, &self.mem));
        }
        let cores = self
            .cores
            .iter_mut()
            .map(|c| {
                c.tracer_mut()
                    .expect("telemetry enabled on every core")
                    .take()
            })
            .collect();
        let interval = state.config.interval;
        let zoo = self.zoo_scheme_rows();
        Some(TelemetryRun {
            interval,
            cores,
            samples,
            zoo,
        })
    }

    /// Per-scheme zoo counters for every core, `(core, label, counters)`
    /// in (core, slot) order; empty when the system runs a plain
    /// prefetcher instead of a zoo.
    pub fn zoo_scheme_stats(&self) -> Vec<(u32, String, SchemeCounters)> {
        let mut rows = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            let Some(zoo) = core.engine_any().and_then(|a| a.downcast_ref::<Zoo>()) else {
                continue;
            };
            for (label, counters) in zoo.scheme_stats() {
                rows.push((i as u32, label, counters));
            }
        }
        rows
    }

    /// Lines currently attributed to a zoo scheme, summed across cores
    /// (0 for non-zoo systems). Test hook for the attribution invariant.
    pub fn zoo_live_attributions(&self) -> usize {
        self.cores
            .iter()
            .filter_map(|c| c.engine_any().and_then(|a| a.downcast_ref::<Zoo>()))
            .map(Zoo::live_attributions)
            .sum()
    }

    fn zoo_scheme_rows(&self) -> Vec<ZooSchemeRow> {
        let mut rows = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            let Some(zoo) = core.engine_any().and_then(|a| a.downcast_ref::<Zoo>()) else {
                continue;
            };
            for (slot, (label, c)) in zoo.scheme_stats().into_iter().enumerate() {
                rows.push(ZooSchemeRow {
                    core: i as u32,
                    slot: slot as u32,
                    scheme: label,
                    generated: c.generated,
                    issued: c.issued,
                    filled: c.filled,
                    useful: c.useful,
                    late: c.late,
                    evicted_used: c.evicted_used,
                    evicted_unused: c.evicted_unused,
                });
            }
        }
        rows
    }

    /// Snapshots one core's cumulative window counters (plus the shared
    /// L2's) into a sample row.
    fn sample_core(index: usize, core: &Core, mem: &MemSystem) -> SampleRow {
        let m = core.metrics();
        let l2 = mem.stats();
        SampleRow {
            core: index as u32,
            instrs: m.instructions,
            cycles: m.cycles,
            line_fetches: m.line_fetches,
            l1i_misses: m.l1i_misses.total(),
            l1d_misses: m.l1d_misses,
            pf_issued: m.prefetch.issued,
            pf_useful: m.prefetch.useful,
            pf_late: m.prefetch.late,
            pf_queue: core.pf_queue_waiting() as u64,
            l2_instr_misses: l2.l2_instr_misses.total(),
            l2_prefetch_misses: l2.l2_prefetch_misses,
        }
    }

    /// Runs every core for `instrs_per_core` further instructions, feeding
    /// core `i` from `sources[i]`. Cores are interleaved smallest-clock
    /// first, so shared-resource contention is deterministic.
    ///
    /// # Panics
    ///
    /// Panics unless `sources.len()` equals the core count.
    pub fn run(&mut self, sources: &mut [&mut dyn OpSource], instrs_per_core: u64) {
        assert_eq!(
            sources.len(),
            self.cores.len(),
            "need exactly one op source per core"
        );
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|c| c.executed() + instrs_per_core)
            .collect();
        // Ops are pulled a quantum at a time through one virtual call,
        // then dispatched to the core with static calls — identical
        // per-core op order and identical quantum-granular interleaving to
        // the old per-op loop, minus the per-op vtable traffic. Sources
        // that hold decoded ops in memory serve a borrowed slice through
        // `next_slice` (zero copies); everything else is copied into the
        // staging buffer through `next_block`.
        let sched_quantum = self.config.sched_quantum;
        let mut block = [TraceOp {
            pc: ipsim_types::Addr(0),
            kind: ipsim_types::instr::OpKind::Other,
        }; MAX_SCHED_QUANTUM as usize];
        let single_core = self.cores.len() == 1;
        loop {
            // Pick the unfinished core with the smallest local clock. With
            // one core the pick is trivially core 0 until it finishes.
            let i = if single_core {
                if self.cores[0].executed() >= targets[0] {
                    break;
                }
                0
            } else {
                let mut next: Option<usize> = None;
                for (i, core) in self.cores.iter().enumerate() {
                    if core.executed() < targets[i]
                        && next.is_none_or(|n| core.clock() < self.cores[n].clock())
                    {
                        next = Some(i);
                    }
                }
                let Some(i) = next else {
                    break;
                };
                i
            };
            let core = &mut self.cores[i];
            let quantum = sched_quantum.min(targets[i] - core.executed()) as usize;
            match sources[i].next_slice(quantum) {
                Some(ops) => core.step_block(ops, &mut self.mem),
                None => {
                    let ops = &mut block[..quantum];
                    sources[i].next_block(ops);
                    core.step_block(ops, &mut self.mem);
                }
            }
            // Interval sampling at quantum granularity: one never-taken
            // branch when telemetry is off, two loads and a compare when
            // it is on but no threshold was crossed.
            if let Some(state) = &mut self.telemetry {
                let executed = self.cores[i].executed();
                if state.sampler.due(i, executed) {
                    let row = Self::sample_core(i, &self.cores[i], &self.mem);
                    state.sampler.record(executed, row);
                }
            }
        }
    }

    /// Builds walkers for `workloads`, warms the system for `warm_instrs`
    /// per core, then measures for `measure_instrs` per core and returns
    /// the metrics. This is the main experiment entry point.
    pub fn run_workload(
        &mut self,
        workloads: &WorkloadSet,
        warm_instrs: u64,
        measure_instrs: u64,
    ) -> SystemMetrics {
        let programs = workloads.programs(self.n_cores());
        let mut walkers: Vec<TraceWalker<'_>> = (0..self.n_cores())
            .map(|c| workloads.walker(&programs, c))
            .collect();
        let mut sources: Vec<&mut dyn OpSource> =
            walkers.iter_mut().map(|w| w as &mut dyn OpSource).collect();
        self.run_workload_from(&mut sources, warm_instrs, measure_instrs)
    }

    /// Warms for `warm_instrs` and measures for `measure_instrs` per core,
    /// feeding core `i` from `sources[i]`. [`System::run_workload`] is this
    /// over freshly-built walkers; the harness calls it directly with
    /// capture tees or replay sources instead.
    ///
    /// Each core consumes exactly `warm_instrs + measure_instrs` ops from
    /// its source, in an order fixed per core regardless of how the
    /// scheduler interleaves cores — which is why one captured trace per
    /// core replays identically under any system configuration.
    pub fn run_workload_from(
        &mut self,
        sources: &mut [&mut dyn OpSource],
        warm_instrs: u64,
        measure_instrs: u64,
    ) -> SystemMetrics {
        if warm_instrs > 0 {
            self.run(sources, warm_instrs);
        }
        self.reset_stats();
        let t0 = std::time::Instant::now();
        self.run(sources, measure_instrs);
        let wall = t0.elapsed().as_secs_f64();
        let mut metrics = self.metrics();
        metrics.sim_wall_seconds = wall;
        metrics
    }

    /// Resets all measurement counters; caches, predictors and prefetcher
    /// state stay warm.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
        self.mem.reset_stats();
        if let Some(state) = &mut self.telemetry {
            let executed: Vec<u64> = self.cores.iter().map(Core::executed).collect();
            state.sampler.reset(&executed);
        }
    }

    /// Restores the state of a freshly built system while reusing every
    /// allocation: cores are reset in place (with freshly built prefetch
    /// engines from the stored recipe), the memory system is emptied, and
    /// telemetry is disarmed. A run on a reset system is bit-identical to
    /// a run on a newly built one — the harness's run-reuse seam depends
    /// on it, and a reuse-vs-fresh test enforces it.
    pub fn reset_cold(&mut self) {
        for core in &mut self.cores {
            let engine = match &self.zoo {
                Some(plan) => {
                    let bound =
                        self.config.core.l1i.lines() as usize + self.config.core.mshrs as usize;
                    Box::new(plan.build(bound)) as Box<dyn ipsim_core::PrefetchEngine>
                }
                None => self.prefetcher.build(),
            };
            core.reset_cold(engine);
        }
        self.mem.reset_cold();
        self.telemetry = None;
    }

    /// Test hook: forces every core's `step_block` down the exact
    /// per-instruction path (see `Core::set_force_slow_path`).
    #[doc(hidden)]
    pub fn set_force_slow_path(&mut self, force: bool) {
        for core in &mut self.cores {
            core.set_force_slow_path(force);
        }
    }

    /// Metrics over the current measurement window.
    pub fn metrics(&self) -> SystemMetrics {
        SystemMetrics {
            cores: self.cores.iter().map(|c| c.metrics()).collect(),
            mem: self.mem.stats().clone(),
            bus_transfers: self.mem.bus_transfers(),
            bus_queue_cycles: self.mem.bus().queue_cycles(),
            sim_wall_seconds: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_set_names_and_assignment() {
        let h = WorkloadSet::homogeneous(Workload::Db);
        assert_eq!(h.name(), "DB");
        assert_eq!(h.workload_for_core(0), Workload::Db);
        assert_eq!(h.workload_for_core(3), Workload::Db);

        let m = WorkloadSet::mixed();
        assert_eq!(m.name(), "Mixed");
        assert_eq!(m.workload_for_core(0), Workload::Db);
        assert_eq!(m.workload_for_core(3), Workload::Web);
    }

    #[test]
    fn builder_validates() {
        let mut b = SystemBuilder::single_core();
        b.config_mut().core.issue_width = 0;
        assert!(b.build().is_err());
        assert!(SystemBuilder::cmp4().build().is_ok());
    }

    #[test]
    fn small_run_produces_consistent_metrics() {
        let mut sys = SystemBuilder::single_core().build().unwrap();
        let m = sys.run_workload(&WorkloadSet::homogeneous(Workload::Web), 2_000, 10_000);
        assert_eq!(m.instructions(), 10_000);
        assert!(m.ipc() > 0.0 && m.ipc() < 3.0, "ipc {}", m.ipc());
        assert!(m.l1i_miss_per_instr() > 0.0);
        assert_eq!(m.cores.len(), 1);
    }

    #[test]
    fn zoo_system_reports_per_scheme_stats() {
        let plan = ZooPlan::parse("nl+disc").unwrap();
        let mut sys = SystemBuilder::single_core().zoo(plan).build().unwrap();
        sys.enable_telemetry(TelemetryConfig::default());
        sys.run_workload(&WorkloadSet::homogeneous(Workload::Web), 2_000, 10_000);
        let stats = sys.zoo_scheme_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1, "nl");
        assert_eq!(stats[1].1, "disc");
        assert!(stats.iter().any(|(_, _, c)| c.issued > 0));
        let run = sys.take_telemetry().unwrap();
        assert_eq!(run.zoo.len(), 2);
        assert_eq!(run.zoo[0].scheme, "nl");
        assert_eq!(run.zoo[1].slot, 1);
        for (row, (_, _, c)) in run.zoo.iter().zip(sys.zoo_scheme_stats()) {
            assert_eq!(row.issued, c.issued);
            assert_eq!(row.useful, c.useful);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sys = SystemBuilder::cmp4().build().unwrap();
            let m = sys.run_workload(&WorkloadSet::mixed(), 2_000, 5_000);
            (
                m.instructions(),
                m.cores.iter().map(|c| c.cycles).collect::<Vec<_>>(),
                m.l1i_miss_breakdown().total(),
                m.mem.l2_instr_misses.total(),
            )
        };
        assert_eq!(run(), run());
    }
}
