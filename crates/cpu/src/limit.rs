//! Limit-study support: perfect elimination of chosen miss classes
//! (the paper's Figure 4).

use ipsim_types::stats::MissGroup;
use ipsim_types::MissCategory;

/// Which instruction-miss groups a limit-study run eliminates perfectly.
///
/// An eliminated miss behaves as a hit: no stall, the line appears in the
/// L1I and L2 for free. The paper uses the six combinations in
/// [`LimitSpec::FIG4_SETS`] to show that sequential-only prefetching leaves
/// most of the opportunity on the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LimitSpec {
    /// Eliminate sequential misses.
    pub sequential: bool,
    /// Eliminate branch-caused misses (conditional and unconditional).
    pub branch: bool,
    /// Eliminate function-call misses (call / jump / return).
    pub function_call: bool,
}

impl LimitSpec {
    /// The six elimination sets of Figure 4, in legend order.
    pub const FIG4_SETS: [LimitSpec; 6] = [
        LimitSpec {
            sequential: true,
            branch: false,
            function_call: false,
        },
        LimitSpec {
            sequential: false,
            branch: true,
            function_call: false,
        },
        LimitSpec {
            sequential: false,
            branch: false,
            function_call: true,
        },
        LimitSpec {
            sequential: true,
            branch: true,
            function_call: false,
        },
        LimitSpec {
            sequential: true,
            branch: false,
            function_call: true,
        },
        LimitSpec {
            sequential: true,
            branch: true,
            function_call: true,
        },
    ];

    /// `true` when misses of `category` are eliminated by this spec.
    pub fn eliminates(&self, category: MissCategory) -> bool {
        match category.group() {
            MissGroup::Sequential => self.sequential,
            MissGroup::Branch => self.branch,
            MissGroup::FunctionCall => self.function_call,
            MissGroup::Trap => false,
        }
    }

    /// Legend label matching the paper's Figure 4.
    pub fn label(&self) -> &'static str {
        match (self.sequential, self.branch, self.function_call) {
            (true, false, false) => "Sequential only",
            (false, true, false) => "Branch only",
            (false, false, true) => "Function only",
            (true, true, false) => "Sequential + Branch",
            (true, false, true) => "Sequential + Function",
            (true, true, true) => "Sequential + Branch + Function",
            (false, false, false) => "none",
            _ => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elimination_follows_groups() {
        let seq_only = LimitSpec::FIG4_SETS[0];
        assert!(seq_only.eliminates(MissCategory::Sequential));
        assert!(!seq_only.eliminates(MissCategory::Call));
        assert!(!seq_only.eliminates(MissCategory::CondTakenFwd));
        assert!(!seq_only.eliminates(MissCategory::Trap));

        let all = LimitSpec::FIG4_SETS[5];
        assert!(all.eliminates(MissCategory::Sequential));
        assert!(all.eliminates(MissCategory::UncondBranch));
        assert!(all.eliminates(MissCategory::Return));
        assert!(
            !all.eliminates(MissCategory::Trap),
            "traps are never eliminated"
        );
    }

    #[test]
    fn labels_match_figure_legend() {
        let labels: Vec<&str> = LimitSpec::FIG4_SETS.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "Sequential only",
                "Branch only",
                "Function only",
                "Sequential + Branch",
                "Sequential + Function",
                "Sequential + Branch + Function",
            ]
        );
    }

    #[test]
    fn default_eliminates_nothing() {
        let d = LimitSpec::default();
        for c in MissCategory::ALL {
            assert!(!d.eliminates(c));
        }
        assert_eq!(d.label(), "none");
    }
}
