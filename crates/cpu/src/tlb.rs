//! TLB modelling (paper Section 5: 128-entry 2-way primary I/D TLBs and a
//! 2K-entry unified secondary TLB).
//!
//! A TLB is structurally a set-associative cache of page translations, so
//! the implementation reuses [`SetAssocCache`] with the page size as the
//! "line" size. TLBs are **disabled by default**: the paper's evaluation
//! never varies them and the workload calibration was performed without
//! TLB stalls; enable them via [`TlbConfig::paper`] to study their
//! (small) effect — see the `fig11_ablations` discussion in
//! `EXPERIMENTS.md`.

use ipsim_cache::{FillKind, SetAssocCache};
use ipsim_types::config::TlbConfig;
use ipsim_types::{Addr, CacheConfig, Cycle, LineSize};

/// Per-access statistics for one TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Primary-TLB accesses.
    pub accesses: u64,
    /// Primary-TLB misses.
    pub l1_misses: u64,
    /// Misses in both levels (software walks).
    pub walks: u64,
}

/// A two-level TLB for one access stream (instruction or data).
///
/// The secondary TLB is modelled per stream rather than unified; commercial
/// working sets make cross-stream secondary conflicts a second-order
/// effect, and keeping the levels private preserves determinism of the
/// per-core accounting.
#[derive(Debug)]
pub struct Tlb {
    l1: SetAssocCache,
    l2: SetAssocCache,
    page: LineSize,
    l2_hit_latency: Cycle,
    walk_latency: Cycle,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB hierarchy from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's geometry is invalid (non-power-of-two
    /// entries or page size).
    pub fn new(config: &TlbConfig) -> Tlb {
        let page = LineSize::new(config.page_bytes).expect("page size is a power of two");
        let l1 = CacheConfig::new(
            config.l1_entries as u64 * config.page_bytes,
            config.l1_assoc,
            config.page_bytes,
        )
        .expect("primary TLB geometry is valid");
        let l2 = CacheConfig::new(
            config.l2_entries as u64 * config.page_bytes,
            4,
            config.page_bytes,
        )
        .expect("secondary TLB geometry is valid");
        Tlb {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            page,
            l2_hit_latency: config.l2_hit_latency,
            walk_latency: config.walk_latency,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr`, returning the added latency (0 on a primary hit).
    pub fn access(&mut self, addr: Addr) -> Cycle {
        self.stats.accesses += 1;
        let page = addr.line(self.page);
        if self.l1.access(page).is_hit() {
            return 0;
        }
        self.stats.l1_misses += 1;
        self.l1.fill(page, FillKind::Demand);
        if self.l2.access(page).is_hit() {
            self.l2_hit_latency
        } else {
            self.stats.walks += 1;
            self.l2.fill(page, FillKind::Demand);
            self.walk_latency
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics (end of warm-up); translations stay resident.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Flushes both levels and zeroes statistics — the state of a freshly
    /// built TLB of the same geometry (run-reuse reset).
    pub fn reset_cold(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(&TlbConfig::paper())
    }

    #[test]
    fn first_touch_walks_then_hits() {
        let mut t = tlb();
        assert_eq!(t.access(Addr(0x10_0000)), 200, "cold page walks");
        assert_eq!(t.access(Addr(0x10_1000)), 0, "same 8KB page hits");
        assert_eq!(t.access(Addr(0x10_2000)), 200, "next page walks");
        assert_eq!(t.stats().walks, 2);
        assert_eq!(t.stats().accesses, 3);
    }

    #[test]
    fn secondary_catches_primary_capacity_misses() {
        let mut t = tlb();
        // Touch 256 pages: double the 128-entry primary, within the 2K
        // secondary.
        for p in 0..256u64 {
            t.access(Addr(p * 8192));
        }
        t.reset_stats();
        // Second sweep: primary thrashes but the secondary holds all 256.
        for p in 0..256u64 {
            let lat = t.access(Addr(p * 8192));
            assert!(lat == 0 || lat == 10, "unexpected walk: {lat}");
        }
        assert_eq!(t.stats().walks, 0);
        assert!(t.stats().l1_misses > 0);
    }

    #[test]
    fn small_working_sets_are_free() {
        let mut t = tlb();
        for p in 0..64u64 {
            t.access(Addr(p * 8192));
        }
        t.reset_stats();
        for _ in 0..4 {
            for p in 0..64u64 {
                assert_eq!(t.access(Addr(p * 8192)), 0);
            }
        }
        assert_eq!(t.stats().l1_misses, 0);
    }

    #[test]
    fn default_config_is_disabled() {
        assert!(!TlbConfig::default().enabled);
        assert!(TlbConfig::paper().enabled);
    }
}
