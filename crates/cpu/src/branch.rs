//! Branch prediction: gshare + direct-mapped tagless BTB + return-address
//! stack (the structures of the paper's Section 5).

use ipsim_types::config::BranchConfig;
use ipsim_types::instr::{CtiClass, OpKind, TraceOp, INSTR_BYTES};
use ipsim_types::Addr;

/// Cycles lost to a front-end redirect when a *decode-time* target
/// mispredicts (direct branches/calls whose target is computed at decode).
const DECODE_REDIRECT_PENALTY: u32 = 3;

/// Branch-prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchStats {
    /// Conditional branches seen.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Taken CTIs whose BTB target was wrong (decode-level redirects for
    /// direct CTIs).
    pub btb_misses: u64,
    /// Indirect jumps whose predicted target was wrong (execute-level
    /// flush).
    pub jump_mispredicts: u64,
    /// Returns mispredicted by the RAS.
    pub ras_mispredicts: u64,
    /// Traps (always full flushes).
    pub traps: u64,
}

impl BranchStats {
    /// Direction misprediction rate over conditional branches.
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &BranchStats) {
        self.cond_branches += other.cond_branches;
        self.cond_mispredicts += other.cond_mispredicts;
        self.btb_misses += other.btb_misses;
        self.jump_mispredicts += other.jump_mispredicts;
        self.ras_mispredicts += other.ras_mispredicts;
        self.traps += other.traps;
    }
}

/// Per-core branch-prediction unit.
///
/// * conditional direction: gshare (global-history XOR PC into a table of
///   2-bit counters),
/// * taken targets: direct-mapped, tagless BTB,
/// * returns: a circular return-address stack, pushed by calls / indirect
///   calls / traps.
///
/// [`BranchUnit::process`] consumes one CTI and returns the pipeline
/// penalty in cycles.
#[derive(Debug, Clone)]
pub struct BranchUnit {
    gshare: Vec<u8>,
    gshare_mask: u64,
    history: u64,
    btb: Vec<u64>,
    btb_mask: u64,
    ras: Vec<Addr>,
    ras_top: usize,
    ras_depth: usize,
    full_penalty: u32,
    stats: BranchStats,
}

impl BranchUnit {
    /// Creates a branch unit; `full_penalty` is the pipeline depth charged
    /// on an execute-level misprediction.
    pub fn new(config: &BranchConfig, full_penalty: u32) -> BranchUnit {
        BranchUnit {
            gshare: vec![1; config.gshare_entries as usize], // weakly not-taken
            gshare_mask: config.gshare_entries as u64 - 1,
            history: 0,
            btb: vec![0; config.btb_entries as usize],
            btb_mask: config.btb_entries as u64 - 1,
            ras: vec![Addr(0); config.ras_entries as usize],
            ras_top: 0,
            ras_depth: 0,
            full_penalty,
            stats: BranchStats::default(),
        }
    }

    /// Forgets everything learned — counters, history, BTB, RAS and
    /// statistics — restoring the state of a freshly built unit with the
    /// same geometry (run-reuse reset; table allocations kept).
    pub fn reset_cold(&mut self) {
        self.gshare.fill(1); // weakly not-taken, as in `new`
        self.history = 0;
        self.btb.fill(0);
        self.ras.fill(Addr(0));
        self.ras_top = 0;
        self.ras_depth = 0;
        self.stats = BranchStats::default();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Resets statistics (end of warm-up) without clearing predictor state.
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }

    #[inline]
    fn gshare_index(&self, pc: Addr) -> usize {
        (((pc.0 >> 2) ^ self.history) & self.gshare_mask) as usize
    }

    #[inline]
    fn btb_index(&self, pc: Addr) -> usize {
        ((pc.0 >> 2) & self.btb_mask) as usize
    }

    // The stack depth is a runtime configuration value, so wrap-around is
    // a compare instead of a `%` (which would be a hardware divide on the
    // hot call/return path).
    fn ras_push(&mut self, addr: Addr) {
        self.ras_top += 1;
        if self.ras_top == self.ras.len() {
            self.ras_top = 0;
        }
        self.ras[self.ras_top] = addr;
        self.ras_depth = (self.ras_depth + 1).min(self.ras.len());
    }

    fn ras_pop(&mut self) -> Option<Addr> {
        if self.ras_depth == 0 {
            return None;
        }
        let v = self.ras[self.ras_top];
        self.ras_top = if self.ras_top == 0 {
            self.ras.len() - 1
        } else {
            self.ras_top - 1
        };
        self.ras_depth -= 1;
        Some(v)
    }

    /// Processes one control-transfer instruction: predicts, updates state
    /// and returns the penalty in cycles (0 for a correct prediction).
    ///
    /// Non-CTI ops are ignored (return 0).
    pub fn process(&mut self, op: &TraceOp) -> u32 {
        let OpKind::Cti {
            class,
            taken,
            target,
        } = op.kind
        else {
            return 0;
        };
        match class {
            CtiClass::CondBranch => {
                self.stats.cond_branches += 1;
                let idx = self.gshare_index(op.pc);
                let predicted_taken = self.gshare[idx] >= 2;
                // Update the 2-bit counter and the global history.
                if taken {
                    self.gshare[idx] = (self.gshare[idx] + 1).min(3);
                } else {
                    self.gshare[idx] = self.gshare[idx].saturating_sub(1);
                }
                self.history = ((self.history << 1) | taken as u64) & self.gshare_mask;
                if predicted_taken != taken {
                    self.stats.cond_mispredicts += 1;
                    return self.full_penalty;
                }
                if taken {
                    // Direction right; a stale BTB target still costs a
                    // decode redirect (PC-relative target recomputed).
                    let b = self.btb_index(op.pc);
                    let hit = self.btb[b] == target.0;
                    self.btb[b] = target.0;
                    if !hit {
                        self.stats.btb_misses += 1;
                        return DECODE_REDIRECT_PENALTY;
                    }
                }
                0
            }
            CtiClass::UncondBranch | CtiClass::Call => {
                // Direct targets: recomputable at decode, so a BTB miss is a
                // short redirect only.
                if class == CtiClass::Call {
                    self.ras_push(op.pc.offset(INSTR_BYTES));
                }
                let b = self.btb_index(op.pc);
                let hit = self.btb[b] == target.0;
                self.btb[b] = target.0;
                if !hit {
                    self.stats.btb_misses += 1;
                    DECODE_REDIRECT_PENALTY
                } else {
                    0
                }
            }
            CtiClass::Jump => {
                // Indirect call: target known only at execute.
                self.ras_push(op.pc.offset(INSTR_BYTES));
                let b = self.btb_index(op.pc);
                let hit = self.btb[b] == target.0;
                self.btb[b] = target.0;
                if !hit {
                    self.stats.jump_mispredicts += 1;
                    self.full_penalty
                } else {
                    0
                }
            }
            CtiClass::Return => {
                let predicted = self.ras_pop();
                if predicted == Some(target) {
                    0
                } else {
                    self.stats.ras_mispredicts += 1;
                    self.full_penalty
                }
            }
            CtiClass::Trap => {
                self.stats.traps += 1;
                self.ras_push(op.pc.offset(INSTR_BYTES));
                self.full_penalty
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsim_types::config::BranchConfig;

    fn unit() -> BranchUnit {
        BranchUnit::new(&BranchConfig::default(), 16)
    }

    fn cti(pc: u64, class: CtiClass, taken: bool, target: u64) -> TraceOp {
        TraceOp {
            pc: Addr(pc),
            kind: OpKind::Cti {
                class,
                taken,
                target: Addr(target),
            },
        }
    }

    #[test]
    fn non_cti_costs_nothing() {
        let mut u = unit();
        let op = TraceOp {
            pc: Addr(100),
            kind: OpKind::Other,
        };
        assert_eq!(u.process(&op), 0);
        assert_eq!(u.stats().cond_branches, 0);
    }

    #[test]
    fn gshare_learns_a_steady_branch() {
        let mut u = unit();
        let op = cti(100, CtiClass::CondBranch, true, 200);
        // Early encounters mispredict: the counters start weakly not-taken
        // and the global history keeps shifting, moving the gshare index,
        // until it saturates at all-taken. Train well past that point.
        for _ in 0..40 {
            u.process(&op);
        }
        assert_eq!(u.process(&op), 0);
        assert!(u.stats().cond_mispredict_rate() < 0.5);
    }

    #[test]
    fn alternating_history_is_learnable() {
        let mut u = unit();
        // A branch alternating T/N/T/N: history-based gshare learns it.
        let mut penalties = 0;
        for i in 0..200 {
            let op = cti(100, CtiClass::CondBranch, i % 2 == 0, 200);
            if u.process(&op) > 0 {
                penalties += 1;
            }
        }
        assert!(
            penalties < 40,
            "gshare failed to learn alternation: {penalties}"
        );
    }

    #[test]
    fn direct_call_misses_cost_decode_redirect_once() {
        let mut u = unit();
        let op = cti(100, CtiClass::Call, true, 5000);
        assert_eq!(u.process(&op), DECODE_REDIRECT_PENALTY);
        assert_eq!(u.process(&op), 0, "BTB now holds the target");
    }

    #[test]
    fn ras_predicts_matched_calls_and_returns() {
        let mut u = unit();
        u.process(&cti(100, CtiClass::Call, true, 5000));
        // Return to 104 (the instruction after the call).
        assert_eq!(u.process(&cti(5096, CtiClass::Return, true, 104)), 0);
        assert_eq!(u.stats().ras_mispredicts, 0);
    }

    #[test]
    fn ras_underflow_and_wrong_target_mispredict() {
        let mut u = unit();
        assert_eq!(u.process(&cti(5096, CtiClass::Return, true, 104)), 16);
        u.process(&cti(100, CtiClass::Call, true, 5000));
        assert_eq!(u.process(&cti(5096, CtiClass::Return, true, 9999)), 16);
        assert_eq!(u.stats().ras_mispredicts, 2);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut u = unit();
        // 20 calls overflow the 16-entry RAS; the 16 most recent survive.
        for i in 0..20u64 {
            u.process(&cti(1000 + i * 8, CtiClass::Call, true, 50_000 + i * 64));
        }
        // Unwind the 16 most recent correctly.
        for i in (4..20u64).rev() {
            let ret = 1000 + i * 8 + 4;
            assert_eq!(
                u.process(&cti(60_000, CtiClass::Return, true, ret)),
                0,
                "return {i}"
            );
        }
        // The 4 oldest were overwritten.
        assert!(u.process(&cti(60_000, CtiClass::Return, true, 1004 + 3 * 8)) > 0);
    }

    #[test]
    fn indirect_jump_mispredict_is_full_flush() {
        let mut u = unit();
        assert_eq!(u.process(&cti(100, CtiClass::Jump, true, 7000)), 16);
        assert_eq!(u.process(&cti(100, CtiClass::Jump, true, 7000)), 0);
        assert_eq!(u.process(&cti(100, CtiClass::Jump, true, 8000)), 16);
        assert_eq!(u.stats().jump_mispredicts, 2);
    }

    #[test]
    fn traps_always_flush_and_push_ras() {
        let mut u = unit();
        assert_eq!(u.process(&cti(100, CtiClass::Trap, true, 90_000)), 16);
        assert_eq!(u.process(&cti(90_100, CtiClass::Return, true, 104)), 0);
    }
}
