//! The memory-level-parallelism window: a ROB-sized bound on how far
//! execution runs ahead of outstanding data misses.

use std::collections::VecDeque;

use ipsim_types::Cycle;

/// Models out-of-order overlap of data misses without per-register
/// dependence tracking.
///
/// Each outstanding load miss is remembered with the index of the
/// instruction that issued it and its completion time. Execution may run at
/// most `capacity` (ROB entries) instructions past an incomplete miss;
/// [`MlpWindow::advance`] charges the stall needed to honour that bound.
/// Independent misses within the window overlap fully — the behaviour the
/// paper contrasts with front-end instruction misses, which stall the
/// pipeline outright.
///
/// # Examples
///
/// ```
/// use ipsim_cpu::MlpWindow;
///
/// let mut w = MlpWindow::new(64);
/// w.note_miss(100, 500); // instruction #100 missed; data ready at cycle 500
/// // 63 instructions later: still within the window, no stall.
/// assert_eq!(w.advance(163, 40), 40);
/// // The window closes at instruction 164: stall until the miss resolves.
/// assert_eq!(w.advance(164, 40), 500);
/// ```
#[derive(Debug, Clone)]
pub struct MlpWindow {
    pending: VecDeque<(u64, Cycle)>,
    capacity: u64,
}

impl MlpWindow {
    /// Creates a window of `capacity` instructions (the ROB size).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> MlpWindow {
        assert!(capacity > 0, "window capacity must be non-zero");
        MlpWindow {
            pending: VecDeque::new(),
            capacity,
        }
    }

    /// Records that the instruction at index `instr_idx` issued a data miss
    /// completing at `ready`.
    pub fn note_miss(&mut self, instr_idx: u64, ready: Cycle) {
        self.pending.push_back((instr_idx, ready));
    }

    /// Advances to instruction `current_idx` at time `clock`; returns the
    /// (possibly increased) clock after honouring the window bound, and
    /// retires completed misses.
    pub fn advance(&mut self, current_idx: u64, mut clock: Cycle) -> Cycle {
        while let Some(&(idx, ready)) = self.pending.front() {
            if idx + self.capacity <= current_idx {
                // The ROB cannot hold this miss and the current instruction
                // simultaneously: wait for the miss to resolve.
                clock = clock.max(ready);
                self.pending.pop_front();
            } else if ready <= clock {
                self.pending.pop_front();
            } else {
                break;
            }
        }
        clock
    }

    /// Number of outstanding (unretired) misses.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Drops every outstanding miss (run-reuse reset).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_overlap_within_window() {
        let mut w = MlpWindow::new(64);
        w.note_miss(10, 400);
        w.note_miss(11, 410);
        w.note_miss(12, 420);
        // At instruction 70 (within 64 of all three): no stall.
        assert_eq!(w.advance(70, 50), 50);
        assert_eq!(w.outstanding(), 3);
        // At instruction 75 the first two misses (10, 11) leave the
        // window; waiting for them covers most of the third's latency.
        let clock = w.advance(75, 50);
        assert_eq!(clock, 410);
        assert_eq!(w.outstanding(), 1);
        // The third retires with only 10 further stall cycles.
        let clock = w.advance(77, clock);
        assert_eq!(clock, 420);
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    fn completed_misses_retire_without_stall() {
        let mut w = MlpWindow::new(4);
        w.note_miss(0, 10);
        assert_eq!(w.advance(1, 50), 50);
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    fn window_bound_is_exact() {
        let mut w = MlpWindow::new(8);
        w.note_miss(100, 999);
        assert_eq!(w.advance(107, 5), 5, "index 107 < 100+8");
        assert_eq!(w.advance(108, 5), 999, "index 108 hits the bound");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        MlpWindow::new(0);
    }
}
