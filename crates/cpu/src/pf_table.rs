//! The core's line→source attribution table.
//!
//! An attribution exists only while its line is in the instruction MSHR
//! or resident in the L1I, so at most `l1i_lines + mshr_entries` entries
//! are ever live. The bounded open-addressed table exploiting that
//! invariant (fixed slots, Fibonacci hashing, backward-shift deletion,
//! O(1) epoch clear, overflow-as-leak-detector) grew into the generic
//! [`ShadowTable`] in `ipsim-prefetch`, where the zoo reuses it for its
//! own line→scheme attributions; this module keeps the CPU-side
//! specialisation to [`PrefetchSource`] values.

use ipsim_core::PrefetchSource;
use ipsim_prefetch::ShadowTable;

/// Fixed-capacity map from line address to the prefetch source that
/// fetched it.
pub(crate) type PfSourceTable = ShadowTable<PrefetchSource>;

/// A table guaranteed to hold `max_live` simultaneous attributions.
pub(crate) fn pf_source_table(max_live: usize) -> PfSourceTable {
    ShadowTable::with_bound(max_live, PrefetchSource::Sequential)
}
