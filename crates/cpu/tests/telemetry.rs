//! Telemetry wiring tests: enabling collection must not perturb
//! simulation, lifecycle event streams must satisfy the state machine,
//! and the exact per-component counters must reconcile with the
//! simulator's own `PrefetchStats`.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{System, SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim_telemetry::{
    validate_lifecycle, PfComponent, PfEventKind, TelemetryConfig, TelemetryRun,
};
use ipsim_trace::Workload;
use proptest::prelude::*;

const WARM: u64 = 5_000;
const MEASURE: u64 = 20_000;

fn flagship() -> System {
    SystemBuilder::cmp4()
        .prefetcher(PrefetcherKind::discontinuity_default())
        .install_policy(InstallPolicy::BypassL2UntilUseful)
        .build()
        .unwrap()
}

/// `SystemMetrics` carries a wall-clock measurement that legitimately
/// differs between runs; everything else must be bit-identical, which the
/// Debug rendering captures field by field.
fn canon(mut m: SystemMetrics) -> String {
    m.sim_wall_seconds = 0.0;
    format!("{m:?}")
}

fn run_flagship(telemetry: Option<TelemetryConfig>) -> (SystemMetrics, Option<TelemetryRun>) {
    let mut sys = flagship();
    if let Some(cfg) = telemetry {
        sys.enable_telemetry(cfg);
    }
    let metrics = sys.run_workload(&WorkloadSet::mixed(), WARM, MEASURE);
    let run = sys.take_telemetry();
    (metrics, run)
}

#[test]
fn telemetry_does_not_perturb_metrics() {
    let (off, none) = run_flagship(None);
    assert!(none.is_none());
    let (on, run) = run_flagship(Some(TelemetryConfig::default()));
    assert_eq!(
        canon(off),
        canon(on),
        "metrics must be bit-identical with telemetry on"
    );
    let run = run.expect("telemetry was enabled");
    assert!(run.total_events() > 0, "flagship config must emit events");

    // A pathological config (sampling every instruction, no event
    // buffer) must not perturb metrics either.
    let (stress, _) = run_flagship(Some(TelemetryConfig {
        interval: 1,
        max_events_per_core: 0,
    }));
    let (off2, _) = run_flagship(None);
    assert_eq!(canon(off2), canon(stress));
}

#[test]
fn lifecycle_streams_are_valid_state_machines() {
    let (_, run) = run_flagship(Some(TelemetryConfig::default()));
    let run = run.unwrap();
    assert_eq!(run.cores.len(), 4);
    for (i, core) in run.cores.iter().enumerate() {
        let summary = validate_lifecycle(&core.events)
            .unwrap_or_else(|v| panic!("core {i}: lifecycle violation: {v}"));
        assert!(summary.issues > 0, "core {i} issued no prefetches");
        assert!(summary.fills > 0, "core {i} saw no fills");
    }
}

#[test]
fn component_counters_reconcile_with_prefetch_stats() {
    let (metrics, run) = run_flagship(Some(TelemetryConfig::default()));
    let run = run.unwrap();

    let mut issued = 0u64;
    let mut queued = 0u64;
    let mut filtered = 0u64;
    let mut probe_hits = 0u64;
    let mut inflight_hits = 0u64;
    let mut first_uses = 0u64;
    let mut late = 0u64;
    for core in &run.cores {
        for c in PfComponent::ALL {
            let k = core.counters(c);
            issued += k.get(PfEventKind::Issued);
            queued += k.get(PfEventKind::Queued);
            filtered += k.get(PfEventKind::Filtered);
            probe_hits += k.get(PfEventKind::DropResident);
            inflight_hits += k.get(PfEventKind::DropInflight);
            first_uses += k.first_uses();
            late += k.get(PfEventKind::FirstUseLate);
        }
    }
    let pf = metrics.prefetch();
    assert_eq!(issued, pf.issued, "issued events vs PrefetchStats");
    assert_eq!(queued, pf.queued, "queued events vs PrefetchStats");
    assert_eq!(filtered, pf.filtered_recent, "filtered events");
    assert_eq!(probe_hits, pf.probe_hits, "drop_resident vs probe_hits");
    assert_eq!(inflight_hits, pf.inflight_hits, "drop_inflight");
    assert_eq!(first_uses, pf.useful, "first uses vs useful");
    assert_eq!(late, pf.late, "late first uses vs late");
}

#[test]
fn sampler_produces_per_core_interval_rows() {
    let interval = 2_000u64;
    let mut sys = flagship();
    sys.enable_telemetry(TelemetryConfig {
        interval,
        max_events_per_core: 0,
    });
    let _ = sys.run_workload(&WorkloadSet::mixed(), WARM, MEASURE);
    let run = sys.take_telemetry().unwrap();
    for core in 0..4u32 {
        let rows: Vec<_> = run.samples.iter().filter(|r| r.core == core).collect();
        // MEASURE/interval threshold crossings plus the final snapshot.
        let want = (MEASURE / interval) as usize + 1;
        assert_eq!(rows.len(), want, "core {core} row count");
        for pair in rows.windows(2) {
            assert!(
                pair[0].instrs <= pair[1].instrs,
                "core {core} not cumulative"
            );
        }
        let last = rows.last().unwrap();
        assert_eq!(last.instrs, MEASURE, "final snapshot covers the window");
        assert_eq!(
            run.cores[core as usize]
                .components
                .iter()
                .map(|c| c.get(PfEventKind::Issued))
                .sum::<u64>(),
            last.pf_issued,
            "core {core}: sampled issue count matches counters"
        );
    }
    assert!(run.last_interval_l1i_mpki().is_some());

    // Warm-up samples must have been discarded by reset_stats: every
    // row's instruction count is window-relative.
    assert!(run.samples.iter().all(|r| r.instrs <= MEASURE));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any workload, policy and prefetcher, every core's lifecycle
    /// event stream satisfies the state machine (no use-after-evict, no
    /// double fill, no issue-while-in-flight).
    #[test]
    fn lifecycle_property(
        seed in 0u64..1_000,
        workload_idx in 0usize..4,
        bypass in any::<bool>(),
        sequential in any::<bool>(),
    ) {
        let workload = Workload::ALL[workload_idx];
        let prefetcher = if sequential {
            PrefetcherKind::NextNLineTagged { n: 4 }
        } else {
            PrefetcherKind::discontinuity_default()
        };
        let policy = if bypass {
            InstallPolicy::BypassL2UntilUseful
        } else {
            InstallPolicy::InstallBoth
        };
        let mut workloads = WorkloadSet::homogeneous(workload);
        workloads.walker_seed ^= seed;
        let mut sys = SystemBuilder::cmp4()
            .prefetcher(prefetcher)
            .install_policy(policy)
            .build()
            .unwrap();
        sys.enable_telemetry(TelemetryConfig::default());
        let _ = sys.run_workload(&workloads, 2_000, 8_000);
        let run = sys.take_telemetry().unwrap();
        for (i, core) in run.cores.iter().enumerate() {
            if let Err(v) = validate_lifecycle(&core.events) {
                prop_assert!(false, "core {}: {}", i, v);
            }
        }
    }
}
