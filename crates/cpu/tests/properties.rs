//! Property-based tests for the timing model: determinism, metric sanity
//! and monotonicity across arbitrary small configurations.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Db),
        Just(Workload::TpcW),
        Just(Workload::JApp),
        Just(Workload::Web),
    ]
}

fn any_prefetcher() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::None),
        Just(PrefetcherKind::NextLineOnMiss),
        Just(PrefetcherKind::NextLineTagged),
        Just(PrefetcherKind::NextNLineTagged { n: 4 }),
        Just(PrefetcherKind::discontinuity_default()),
        Just(PrefetcherKind::discontinuity_2nl()),
        Just(PrefetcherKind::WrongPath { next_line: true }),
        Just(PrefetcherKind::Markov {
            table_entries: 1024,
            ahead: 4
        }),
    ]
}

fn any_policy() -> impl Strategy<Value = InstallPolicy> {
    prop_oneof![
        Just(InstallPolicy::InstallBoth),
        Just(InstallPolicy::BypassL2UntilUseful),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (workload, prefetcher, policy, seed) combination runs to
    /// completion with sane metrics, and re-running it reproduces the
    /// result exactly.
    #[test]
    fn runs_are_sane_and_deterministic(
        w in any_workload(),
        kind in any_prefetcher(),
        policy in any_policy(),
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut ws = WorkloadSet::homogeneous(w);
            ws.walker_seed = seed;
            let mut system = SystemBuilder::new(SystemConfig::cmp4())
                .prefetcher(kind)
                .install_policy(policy)
                .build()
                .expect("valid config");
            let m = system.run_workload(&ws, 50_000, 150_000);
            // Sanity: instruction counts exact, IPC within physical bounds,
            // rates within [0, 1], accuracy within [0, 1].
            prop_assert_eq!(m.instructions(), 4 * 150_000);
            let ipc = m.ipc();
            prop_assert!(ipc > 0.0 && ipc <= 12.0, "ipc {}", ipc);
            for rate in [
                m.l1i_miss_per_instr(),
                m.l2_instr_miss_per_instr(),
                m.l2_data_miss_per_instr(),
                m.l1d_miss_per_instr(),
            ] {
                prop_assert!((0.0..1.0).contains(&rate), "rate {}", rate);
            }
            let acc = m.prefetch_accuracy();
            prop_assert!((0.0..=1.0).contains(&acc), "accuracy {}", acc);
            // Useful prefetches never exceed issued ones.
            let pf = m.prefetch();
            prop_assert!(pf.useful <= pf.issued);
            prop_assert!(pf.issued <= pf.probes);
            prop_assert!(pf.queued <= pf.generated);
            Ok((
                m.cores.iter().map(|c| c.cycles).collect::<Vec<_>>(),
                m.l1i_miss_breakdown().total(),
                m.bus_transfers,
            ))
        };
        let a = run()?;
        let b = run()?;
        prop_assert_eq!(a, b, "same configuration must reproduce exactly");
    }

    /// The line-granular fast path in `Core::step_block` must be a pure
    /// optimisation: any configuration run with the fast path forced off
    /// produces bit-identical metrics — per-core cycles, every counter,
    /// every breakdown — and bit-identical telemetry. Exercised across
    /// workloads, prefetchers, policies, seeds and scheduler quanta (the
    /// quantum bounds how many ops a batch can cover).
    #[test]
    fn fast_path_is_bit_identical_to_per_op_stepping(
        w in any_workload(),
        kind in any_prefetcher(),
        policy in any_policy(),
        seed in 0u64..1000,
        quantum in prop_oneof![Just(1u64), Just(3), Just(16), Just(64)],
        telemetry in prop_oneof![Just(false), Just(true)],
    ) {
        let run = |force_slow: bool| {
            let mut ws = WorkloadSet::homogeneous(w);
            ws.walker_seed = seed;
            let mut config = SystemConfig::cmp4();
            config.sched_quantum = quantum;
            let mut system = SystemBuilder::new(config)
                .prefetcher(kind)
                .install_policy(policy)
                .build()
                .expect("valid config");
            system.set_force_slow_path(force_slow);
            if telemetry {
                system.enable_telemetry(ipsim_telemetry::TelemetryConfig {
                    interval: 10_000,
                    max_events_per_core: 4_096,
                });
            }
            let mut m = system.run_workload(&ws, 20_000, 60_000);
            m.sim_wall_seconds = 0.0; // host timing, not simulation state
            (format!("{m:?}"), format!("{:?}", system.take_telemetry()))
        };
        let fast = run(false);
        let slow = run(true);
        prop_assert_eq!(&fast.0, &slow.0, "metrics diverged");
        prop_assert_eq!(&fast.1, &slow.1, "telemetry diverged");
    }

    /// Prefetching never makes the L1I miss *stall* situation absurd: the
    /// prefetched run retires the same instructions in no more than ~1.5x
    /// the baseline cycles (prefetchers can lose a little to bandwidth, but
    /// a blow-up signals an accounting bug).
    #[test]
    fn prefetching_never_blows_up_runtime(
        w in any_workload(),
        kind in any_prefetcher(),
    ) {
        let cycles = |kind| {
            let mut system = SystemBuilder::new(SystemConfig::cmp4())
                .prefetcher(kind)
                .build()
                .expect("valid config");
            let m = system.run_workload(&WorkloadSet::homogeneous(w), 50_000, 150_000);
            m.cores.iter().map(|c| c.cycles).max().unwrap()
        };
        let base = cycles(PrefetcherKind::None);
        let with = cycles(kind);
        prop_assert!(
            (with as f64) < base as f64 * 1.5,
            "{:?}: {} vs baseline {}",
            kind, with, base
        );
    }
}
