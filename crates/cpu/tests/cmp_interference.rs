//! System-level tests of CMP interference effects: shared-L2 code sharing,
//! bus contention, and the deterministic core interleaving.

use ipsim_cpu::{SystemBuilder, WorkloadSet};
use ipsim_trace::Workload;
use ipsim_types::SystemConfig;

const WARM: u64 = 400_000;
const MEASURE: u64 = 800_000;

#[test]
fn same_binary_cores_share_code_in_the_l2() {
    // Four cores running the same application share one program; four
    // cores running different applications (Mixed) bring four code images.
    // The mixed configuration must suffer more L2 instruction misses.
    let mut homo = SystemBuilder::cmp4().build().unwrap();
    let h = homo.run_workload(&WorkloadSet::homogeneous(Workload::TpcW), WARM, MEASURE);
    let mut mixed = SystemBuilder::cmp4().build().unwrap();
    let m = mixed.run_workload(&WorkloadSet::mixed(), WARM, MEASURE);
    assert!(
        m.l2_instr_miss_per_instr() > h.l2_instr_miss_per_instr() * 0.9,
        "mixed {} vs homogeneous TPC-W {}",
        m.l2_instr_miss_per_instr(),
        h.l2_instr_miss_per_instr()
    );
}

#[test]
fn four_cores_contend_for_the_bus() {
    // Per-core performance on the CMP must be below the single-core run of
    // the same application: shared L2 capacity and bus bandwidth are split
    // four ways (the CMP does have 2x the bus bandwidth, not 4x).
    let mut single = SystemBuilder::single_core().build().unwrap();
    let s = single.run_workload(&WorkloadSet::homogeneous(Workload::Db), WARM, MEASURE);
    let mut cmp = SystemBuilder::cmp4().build().unwrap();
    let c = cmp.run_workload(&WorkloadSet::homogeneous(Workload::Db), WARM, MEASURE);
    let per_core_cmp = c.ipc() / 4.0;
    assert!(
        per_core_cmp < s.ipc() * 1.02,
        "per-core CMP IPC {per_core_cmp} vs single-core {}",
        s.ipc()
    );
    // But the chip as a whole has higher throughput.
    assert!(
        c.ipc() > s.ipc() * 1.5,
        "chip IPC {} vs {}",
        c.ipc(),
        s.ipc()
    );
}

#[test]
fn cores_progress_at_similar_rates() {
    // The smallest-clock-first scheduler must not starve any core: after a
    // homogeneous run, per-core cycle counts should agree within ~20%.
    let mut system = SystemBuilder::cmp4().build().unwrap();
    let m = system.run_workload(&WorkloadSet::homogeneous(Workload::Web), WARM, MEASURE);
    let cycles: Vec<u64> = m.cores.iter().map(|c| c.cycles).collect();
    let min = *cycles.iter().min().unwrap() as f64;
    let max = *cycles.iter().max().unwrap() as f64;
    assert!(max / min < 1.2, "core cycles skewed: {cycles:?}");
    for c in &m.cores {
        assert_eq!(c.instructions, MEASURE);
    }
}

#[test]
fn smaller_shared_l2_hurts_the_cmp_more() {
    let run = |mb: u64| {
        let mut config = SystemConfig::cmp4();
        config.mem.l2 = ipsim_types::CacheConfig::new(mb << 20, 4, 64).unwrap();
        let mut system = SystemBuilder::new(config).build().unwrap();
        system
            .run_workload(&WorkloadSet::mixed(), WARM, MEASURE)
            .l2_instr_miss_per_instr()
    };
    let one = run(1);
    let four = run(4);
    assert!(one > four, "1MB {one} vs 4MB {four}");
}

#[test]
fn distinct_walker_seeds_give_distinct_but_similar_behaviour() {
    // Same binary, different transaction mixes: aggregate miss rates agree
    // to first order, but the cycle-level behaviour differs.
    let run = |walker_seed: u64| {
        let mut ws = WorkloadSet::homogeneous(Workload::Db);
        ws.walker_seed = walker_seed;
        let mut system = SystemBuilder::cmp4().build().unwrap();
        let m = system.run_workload(&ws, WARM, MEASURE);
        (
            m.l1i_miss_per_instr(),
            m.cores.iter().map(|c| c.cycles).collect::<Vec<_>>(),
        )
    };
    let (rate_a, cycles_a) = run(1);
    let (rate_b, cycles_b) = run(2);
    assert_ne!(cycles_a, cycles_b, "different seeds must differ in detail");
    let ratio = rate_a / rate_b;
    assert!(
        (0.7..1.4).contains(&ratio),
        "seeds changed the workload character: {rate_a} vs {rate_b}"
    );
}
