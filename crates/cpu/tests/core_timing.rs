//! Direct timing tests: hand-crafted instruction streams through one
//! `Core` + `MemSystem`, asserting the cycle accounting the whole
//! reproduction rests on.

use ipsim_cache::InstallPolicy;
use ipsim_core::PrefetcherKind;
use ipsim_cpu::{Core, MemSystem};
use ipsim_types::instr::{CtiClass, OpKind, TraceOp};
use ipsim_types::{Addr, CoreConfig, MemConfig, SystemConfig};

fn parts(prefetcher: PrefetcherKind, policy: InstallPolicy) -> (Core, MemSystem) {
    let config = SystemConfig::single_core();
    (
        Core::new(0, &config.core, prefetcher, None),
        MemSystem::new(&config.mem, policy),
    )
}

fn plain(pc: u64) -> TraceOp {
    TraceOp {
        pc: Addr(pc),
        kind: OpKind::Other,
    }
}

/// A straight-line run of `n` instructions starting at `pc`.
fn straight(pc: u64, n: u64) -> Vec<TraceOp> {
    (0..n).map(|i| plain(pc + 4 * i)).collect()
}

#[test]
fn sequential_code_costs_one_memory_miss_per_line() {
    let (mut core, mut mem) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    // 64 instructions = 4 lines of cold code: 4 memory misses.
    for op in straight(0x1000, 64) {
        core.step(op, &mut mem);
    }
    let m = core.metrics();
    assert_eq!(m.l1i_misses.total(), 4);
    assert_eq!(mem.stats().l2_instr_misses.total(), 4);
    // Each miss stalls for ~(400 memory + transfer) cycles.
    assert!(m.cycles > 4 * 400, "cycles {}", m.cycles);
    // Re-running the same code is nearly free (cache-resident).
    let before = core.metrics().cycles;
    for op in straight(0x1000, 64) {
        core.step(op, &mut mem);
    }
    let delta = core.metrics().cycles - before;
    assert!(delta < 64, "warm rerun cost {delta} cycles");
}

#[test]
fn issue_width_sets_the_warm_ipc() {
    let (mut core, mut mem) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    // Warm the line first.
    for op in straight(0x1000, 16) {
        core.step(op, &mut mem);
    }
    core.reset_stats();
    for _ in 0..10 {
        for op in straight(0x1000, 16) {
            core.step(op, &mut mem);
        }
    }
    let m = core.metrics();
    let ipc = m.ipc();
    // 3-wide issue: warm straight-line code runs at IPC ≈ 3 (the cycle
    // accumulator rounds at instruction boundaries, hence the slack).
    assert!((2.5..=3.1).contains(&ipc), "warm IPC {ipc}");
}

#[test]
fn sequential_prefetching_overlaps_cold_stream_latency() {
    // On an endless *cold* sequential stream, next-line prefetching cannot
    // eliminate the miss events (the demand is only one line behind), but
    // a 4-line window keeps 4 fills in flight, cutting per-line stall to
    // roughly a quarter of the memory latency.
    let run = |kind| {
        let (mut core, mut mem) = parts(kind, InstallPolicy::InstallBoth);
        for op in straight(0x4_0000, 2048) {
            core.step(op, &mut mem);
        }
        (core.metrics().cycles, core.metrics().prefetch)
    };
    let (base_cycles, _) = run(PrefetcherKind::None);
    let (n4l_cycles, pf) = run(PrefetcherKind::NextNLineTagged { n: 4 });
    assert!(
        (n4l_cycles as f64) < base_cycles as f64 * 0.55,
        "next-4-line {n4l_cycles} vs baseline {base_cycles} cycles"
    );
    // The coverage on this stream is all late-but-useful merges.
    assert!(pf.useful > 0 && pf.late > 0, "prefetch stats {pf:?}");
}

#[test]
fn discontinuity_learns_a_repeating_jump() {
    let (mut core, mut mem) = parts(
        PrefetcherKind::discontinuity_default(),
        InstallPolicy::InstallBoth,
    );
    // A loop: 32 instructions at A, jump to B (far away), 32 instructions
    // at B, jump back to A. The second traversal should find B prefetched.
    let jump = |pc: u64, target: u64| TraceOp {
        pc: Addr(pc),
        kind: OpKind::Cti {
            class: CtiClass::UncondBranch,
            taken: true,
            target: Addr(target),
        },
    };
    let a = 0x1_0000u64;
    let b = 0x9_0000u64;
    let lap = |core: &mut Core, mem: &mut MemSystem| {
        for op in straight(a, 31) {
            core.step(op, mem);
        }
        core.step(jump(a + 31 * 4, b), mem);
        for op in straight(b, 31) {
            core.step(op, mem);
        }
        core.step(jump(b + 31 * 4, a), mem);
    };
    // First lap: everything cold.
    lap(&mut core, &mut mem);
    let cold = core.metrics().l1i_misses.total();
    assert!(cold >= 4, "cold lap misses {cold}");
    // Subsequent laps: all lines resident (tiny footprint), no misses.
    core.reset_stats();
    for _ in 0..3 {
        lap(&mut core, &mut mem);
    }
    assert_eq!(core.metrics().l1i_misses.total(), 0);
}

#[test]
fn data_misses_overlap_but_instruction_misses_do_not() {
    // Two runs: one with 8 independent cold loads, one with 8 cold
    // instruction lines. Same number of memory accesses; the load run
    // must cost far fewer cycles thanks to the MLP window.
    let (mut core, mut mem) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    for op in straight(0x1000, 16) {
        core.step(op, &mut mem); // warm the code line
    }
    core.reset_stats();
    for i in 0..8u64 {
        core.step(
            TraceOp {
                pc: Addr(i * 4 % 64 + 0x1000),
                kind: OpKind::Load {
                    addr: Addr(0x10_0000_0000 + i * 64),
                },
            },
            &mut mem,
        );
    }
    // Let the window drain.
    for _ in 0..200 {
        core.step(plain(0x1000), &mut mem);
    }
    let load_cycles = core.metrics().cycles;

    let (mut core2, mut mem2) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    for op in straight(0x80_0000, 8 * 16) {
        core2.step(op, &mut mem2); // 8 cold lines, fetched serially
    }
    let instr_cycles = core2.metrics().cycles;
    assert!(
        load_cycles * 2 < instr_cycles,
        "loads {load_cycles} vs instruction fetches {instr_cycles}"
    );
}

#[test]
fn branch_mispredictions_cost_pipeline_restarts() {
    let (mut core, mut mem) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    // Warm two lines so only branch penalties remain.
    for op in straight(0x1000, 32) {
        core.step(op, &mut mem);
    }
    core.reset_stats();
    // A conditional branch with a random-looking pattern: gshare cannot
    // learn pure alternation-with-jitter immediately; expect some
    // mispredict cycles, far fewer once trained on a fixed pattern.
    let branch = |taken| TraceOp {
        pc: Addr(0x1000),
        kind: OpKind::Cti {
            class: CtiClass::CondBranch,
            taken,
            target: Addr(0x1040),
        },
    };
    for i in 0..400u32 {
        core.step(branch(i % 2 == 0), &mut mem);
        core.step(plain(if i % 2 == 0 { 0x1040 } else { 0x1004 }), &mut mem);
    }
    let m = core.metrics();
    assert!(m.branch.cond_branches == 400);
    // Alternation is learnable: after warm-up the mispredict rate is low.
    assert!(
        m.branch.cond_mispredict_rate() < 0.2,
        "mispredict rate {}",
        m.branch.cond_mispredict_rate()
    );
}

#[test]
fn bypass_policy_keeps_useless_prefetches_out_of_l2() {
    let run = |policy| {
        let (mut core, mut mem) = parts(PrefetcherKind::NextNLineTagged { n: 4 }, policy);
        // One isolated miss per distant region: the prefetcher fetches 4
        // lines ahead, none of which are ever used.
        for region in 0..64u64 {
            let base = 0x10_0000 + region * 0x10_000;
            for op in straight(base, 8) {
                core.step(op, &mut mem);
            }
            // Drain in-flight prefetch fills so they install.
            for op in straight(base, 8) {
                core.step(op, &mut mem);
            }
        }
        mem.l2().resident_lines()
    };
    let installed = run(InstallPolicy::InstallBoth);
    let bypassed = run(InstallPolicy::BypassL2UntilUseful);
    assert!(
        bypassed < installed,
        "bypass {bypassed} lines vs install {installed} lines in L2"
    );
}

#[test]
fn core_metrics_reset_cleanly() {
    let (mut core, mut mem) = parts(PrefetcherKind::None, InstallPolicy::InstallBoth);
    for op in straight(0x1000, 100) {
        core.step(op, &mut mem);
    }
    assert!(core.metrics().instructions == 100);
    core.reset_stats();
    let m = core.metrics();
    assert_eq!(m.instructions, 0);
    assert_eq!(m.cycles, 0);
    assert_eq!(m.l1i_misses.total(), 0);
    assert_eq!(m.l1d_accesses, 0);
}

#[test]
fn memconfig_bandwidth_affects_serial_miss_cost() {
    // Same miss sequence under generous vs starved bandwidth: starved
    // bandwidth must take longer overall (queueing).
    let run = |bytes_per_cycle: f64| {
        let config = SystemConfig::single_core();
        let mem_config = MemConfig {
            offchip_bytes_per_cycle: bytes_per_cycle,
            ..config.mem
        };
        let core_config = CoreConfig { ..config.core };
        let mut core = Core::new(
            0,
            &core_config,
            PrefetcherKind::NextNLineTagged { n: 4 },
            None,
        );
        let mut mem = MemSystem::new(&mem_config, InstallPolicy::InstallBoth);
        for op in straight(0x40_0000, 2048) {
            core.step(op, &mut mem);
        }
        core.metrics().cycles
    };
    let fast = run(64.0);
    let slow = run(0.5);
    assert!(slow > fast, "slow {slow} vs fast {fast}");
}

#[test]
fn prefetch_attribution_stays_bounded_over_long_runs() {
    // Regression test for the unbounded `pf_sources` map: attribution
    // entries must be reclaimed when their line is used or evicted, so the
    // live count can never exceed l1i_lines + mshr_entries no matter how
    // long the run is or how aggressively the prefetcher fires. Drive a
    // code footprint far larger than the L1I with a discontinuity-heavy
    // walk so lines are constantly prefetched, filled and evicted.
    let config = SystemConfig::single_core();
    let bound = config.core.l1i.lines() as usize + config.core.mshrs as usize;
    let mut core = Core::new(
        0,
        &config.core,
        PrefetcherKind::Discontinuity {
            table_entries: 128,
            ahead: 4,
        },
        None,
    );
    let mut mem = MemSystem::new(&config.mem, InstallPolicy::InstallBoth);

    // Deterministic jumpy walk across a 4 MiB footprint (the L1I is 64 KiB).
    let mut x = 0xDEAD_BEEFu64;
    let mut pc = 0x10_0000u64;
    for i in 0..200_000u64 {
        if i % 12 == 0 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pc = 0x10_0000 + (x % 0x40_0000) / 4 * 4;
        }
        core.step(plain(pc), &mut mem);
        pc += 4;
        let (live, slots) = core.pf_attribution_usage();
        assert!(
            live <= bound,
            "attribution leak: {live} live > bound {bound}"
        );
        assert!(live <= slots);
    }
    let (live, _) = core.pf_attribution_usage();
    assert!(
        live > 0,
        "walk never left an in-flight/resident attribution"
    );
}
