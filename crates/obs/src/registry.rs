//! Get-or-register metric registry.
//!
//! Registration takes the registry mutex once per (name, label-set) and
//! hands back an `Arc`-backed handle; hot paths clone the handle up
//! front and after that every increment/observe is a relaxed atomic op
//! with no lock. The map is a `BTreeMap` keyed on name then sorted
//! labels, so Prometheus rendering is deterministic without a sort pass.
//!
//! Metric naming follows `ipsim_<subsystem>_<what>_<unit>`, e.g.
//! `ipsim_serve_request_micros` or `ipsim_harness_cache_probe_total` —
//! the subsystem prefix keeps one process's serve, harness and kernel
//! families apart in a single scrape.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::prom;

/// A metric's identity: name plus sorted label pairs.
pub(crate) type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// Monotonic counter handle; clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one. No-op while instrumentation is disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while instrumentation is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous level handle (queue depth, in-flight jobs); clones
/// share the same cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level. No-op while instrumentation is disabled.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds (possibly negative) `delta`. No-op while disabled.
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A set of named metric families, rendering as one Prometheus page.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Families>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter for `(name, labels)`, registering it first if
    /// needed. Label order does not matter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut fam = self.families.lock().unwrap();
        fam.counters.entry(key(name, labels)).or_default().clone()
    }

    /// Returns the gauge for `(name, labels)`, registering on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut fam = self.families.lock().unwrap();
        fam.gauges.entry(key(name, labels)).or_default().clone()
    }

    /// Returns the histogram for `(name, labels)`, registering on first
    /// use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut fam = self.families.lock().unwrap();
        fam.histograms.entry(key(name, labels)).or_default().clone()
    }

    /// Renders every registered metric as Prometheus text exposition —
    /// the `GET /v1/metrics` response body. Deterministic order: family
    /// name, then sorted labels.
    pub fn render_prometheus(&self) -> String {
        let fam = self.families.lock().unwrap();
        let mut out = String::new();
        prom::render_counters(&mut out, &fam.counters);
        prom::render_gauges(&mut out, &fam.gauges);
        prom::render_histograms(&mut out, &fam.histograms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_a_cell() {
        let r = Registry::new();
        r.counter("ipsim_test_total", &[("kind", "a")]).add(2);
        r.counter("ipsim_test_total", &[("kind", "a")]).inc();
        assert_eq!(r.counter("ipsim_test_total", &[("kind", "a")]).get(), 3);
        assert_eq!(r.counter("ipsim_test_total", &[("kind", "b")]).get(), 0);
    }

    #[test]
    fn label_order_is_normalised() {
        let r = Registry::new();
        r.counter("ipsim_test_total", &[("a", "1"), ("b", "2")])
            .inc();
        assert_eq!(
            r.counter("ipsim_test_total", &[("b", "2"), ("a", "1")])
                .get(),
            1
        );
    }

    #[test]
    fn gauge_tracks_levels() {
        let r = Registry::new();
        let g = r.gauge("ipsim_test_depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(r.gauge("ipsim_test_depth", &[]).get(), 3);
    }
}
