//! Log₂-bucketed histogram with linear sub-buckets.
//!
//! The bucket layout is the classic HDR shape with 2 significant bits:
//! values below 4 get exact unit buckets; above that, each power-of-two
//! range is split into 4 linear sub-buckets, so every bucket's width is
//! at most 25% of its lower bound. A recorded value therefore reports a
//! percentile within ~25% of the exact answer at any magnitude, which is
//! plenty for latency distributions spanning microseconds to minutes —
//! while `observe` stays three relaxed atomic adds with no allocation and
//! no locks, safe to call from every worker thread at once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-bucket bits per power-of-two range.
const SUB_BITS: u32 = 2;
/// Sub-buckets per power-of-two range (4).
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: one group of unit
/// buckets plus one group per exponent in `SUB_BITS..64`.
pub const BUCKET_COUNT: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Maps a value to its bucket index. Exposed so tests can check the
/// "within one bucket" percentile guarantee directly.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let group = (exp - SUB_BITS + 1) as usize;
        let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        group * SUB_COUNT + sub
    }
}

/// Inclusive upper bound of a bucket: the largest value that maps to
/// `idx`. Percentile estimates report this bound.
pub fn bucket_upper(idx: usize) -> u64 {
    assert!(idx < BUCKET_COUNT, "bucket index {idx} out of range");
    if idx < SUB_COUNT {
        idx as u64
    } else {
        let group = (idx / SUB_COUNT) as u32;
        let next = ((SUB_COUNT + idx % SUB_COUNT + 1) as u128) << (group - 1);
        if next > u64::MAX as u128 {
            u64::MAX
        } else {
            (next - 1) as u64
        }
    }
}

struct HistCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A shared histogram handle; clones observe into the same buckets.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            core: Arc::new(HistCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. No-op while instrumentation is disabled.
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile estimate (`p` in 0..=100): the inclusive
    /// upper bound of the bucket holding the rank-th observation, i.e.
    /// within one bucket (≤25%) of the exact order statistic. Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A point-in-time copy of the buckets for rendering. Taken bucket
    /// by bucket with relaxed loads: concurrent observers may straddle
    /// the snapshot, so `count` is recomputed as the bucket sum to keep
    /// the snapshot internally consistent.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistSnapshot {
            buckets,
            count,
            sum: self.core.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's state.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Observation count per bucket, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
    /// Total observations (sum of `buckets`).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistSnapshot {
    /// Nearest-rank percentile over the snapshot; see
    /// [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(BUCKET_COUNT - 1)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order — the shape Prometheus exposition and
    /// report tables want.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's upper bound maps back to that bucket, and the
        // next value maps to the next non-empty bucket.
        for idx in 0..BUCKET_COUNT {
            let hi = bucket_upper(idx);
            assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
            if hi < u64::MAX {
                assert_eq!(bucket_index(hi + 1), idx + 1, "bucket {idx} successor");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_width_stays_within_quarter_of_lower_bound() {
        for idx in SUB_COUNT..BUCKET_COUNT {
            let hi = bucket_upper(idx);
            let lo = bucket_upper(idx - 1).saturating_add(1);
            assert!(hi >= lo);
            if hi < u64::MAX {
                assert!(
                    (hi - lo) as u128 * 4 <= lo as u128,
                    "bucket {idx} [{lo}, {hi}] wider than 25% of its floor"
                );
            }
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // p50 of 1..=100 is 50; bucket holding 50 is [48, 55].
        let p50 = h.percentile(50.0);
        assert_eq!(bucket_index(p50), bucket_index(50));
        let p99 = h.percentile(99.0);
        assert_eq!(bucket_index(p99), bucket_index(99));
        assert_eq!(h.percentile(0.0), bucket_upper(bucket_index(1)));
        assert_eq!(h.percentile(100.0), bucket_upper(bucket_index(100)));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().nonzero().is_empty());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }
}
