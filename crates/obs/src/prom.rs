//! Prometheus text exposition: rendering and a strict parser.
//!
//! The render side turns registry families into the classic text format
//! (`# TYPE` line, then one sample per label-set; histograms as
//! cumulative `_bucket{le=…}` + `_sum` + `_count`). The parse side is
//! the same contract read back: `ops_report`, `serve_load` and the
//! `metrics-smoke` CI job all validate a scrape with [`parse_text`]
//! instead of eyeballing it, mirroring how every ipsim-telemetry writer
//! has a matching validator.
//!
//! Histogram `le` bounds are the registry buckets' *inclusive* upper
//! bounds, which is exactly Prometheus's `le` (≤) semantics. Only
//! non-empty buckets are emitted (plus `+Inf`), keeping a scrape of a
//! 252-bucket histogram small.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::registry::{Counter, Gauge, Key};

/// Sorted label pairs identifying one histogram series (minus `le`).
type LabelSet = Vec<(String, String)>;
/// `(le, cumulative_count)` buckets grouped per series.
type BucketGroups = BTreeMap<LabelSet, Vec<(f64, f64)>>;

fn render_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Escapes a label value per the exposition format: `\\`, `\"`, `\n`.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders labels with an extra `le` pair appended (histogram buckets).
fn render_bucket_labels(out: &mut String, labels: &[(String, String)], le: &str) {
    out.push('{');
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label(v));
    }
    let _ = write!(out, "le=\"{le}\"");
    out.push('}');
}

fn type_line(out: &mut String, name: &str, kind: &str, last: &mut String) {
    if name != last {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

pub(crate) fn render_counters(out: &mut String, counters: &BTreeMap<Key, Counter>) {
    let mut last = String::new();
    for ((name, labels), c) in counters {
        type_line(out, name, "counter", &mut last);
        out.push_str(name);
        render_labels(out, labels);
        let _ = writeln!(out, " {}", c.get());
    }
}

pub(crate) fn render_gauges(out: &mut String, gauges: &BTreeMap<Key, Gauge>) {
    let mut last = String::new();
    for ((name, labels), g) in gauges {
        type_line(out, name, "gauge", &mut last);
        out.push_str(name);
        render_labels(out, labels);
        let _ = writeln!(out, " {}", g.get());
    }
}

pub(crate) fn render_histograms(out: &mut String, histograms: &BTreeMap<Key, Histogram>) {
    let mut last = String::new();
    for ((name, labels), h) in histograms {
        type_line(out, name, "histogram", &mut last);
        let snap = h.snapshot();
        let mut cum = 0u64;
        for (upper, n) in snap.nonzero() {
            cum += n;
            let _ = write!(out, "{name}_bucket");
            render_bucket_labels(out, labels, &upper.to_string());
            let _ = writeln!(out, " {cum}");
        }
        let _ = write!(out, "{name}_bucket");
        render_bucket_labels(out, labels, "+Inf");
        let _ = writeln!(out, " {}", snap.count);
        out.push_str(name);
        out.push_str("_sum");
        render_labels(out, labels);
        let _ = writeln!(out, " {}", snap.sum);
        out.push_str(name);
        out.push_str("_count");
        render_labels(out, labels);
        let _ = writeln!(out, " {}", snap.count);
    }
}

/// One sample line: metric name, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (for histograms this includes the `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// Parsed value (`+Inf`, `-Inf` and `NaN` are accepted).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every pair in `want` appears in this sample's labels.
    pub fn has_labels(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

/// A metric family: the `# TYPE` declaration plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name as declared.
    pub name: String,
    /// Declared type: `counter`, `gauge`, `histogram`, `summary` or
    /// `untyped`.
    pub kind: String,
    /// Samples belonging to this family, in file order.
    pub samples: Vec<Sample>,
}

/// A parsed exposition page.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families in declaration order.
    pub families: Vec<Family>,
}

impl Exposition {
    /// Looks up a family by declared name.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Total sample lines across all families.
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// Merged cumulative buckets of histogram family `name`, restricted
    /// to samples carrying every label pair in `want`. Label-sets with
    /// different bucket boundaries are merged by de-cumulating,
    /// combining per-bound, and re-cumulating. Returns ascending
    /// `(le, cumulative_count)` ending with the `+Inf` bound, or an
    /// empty vec if the family is missing or has no buckets.
    pub fn histogram_buckets(&self, name: &str, want: &[(&str, &str)]) -> Vec<(f64, f64)> {
        let Some(fam) = self.family(name) else {
            return Vec::new();
        };
        let bucket_name = format!("{name}_bucket");
        // Group by the full label-set minus `le`, then de-cumulate each
        // group independently.
        let mut groups: BucketGroups = BTreeMap::new();
        for s in &fam.samples {
            if s.name != bucket_name || !s.has_labels(want) {
                continue;
            }
            let Some(le) = s.label("le").and_then(parse_value) else {
                continue;
            };
            let mut base: LabelSet = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            base.sort();
            groups.entry(base).or_default().push((le, s.value));
        }
        let mut deltas: BTreeMap<u64, f64> = BTreeMap::new();
        for (_, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut prev = 0.0;
            for (le, cum) in buckets {
                *deltas.entry(le.to_bits()).or_default() += cum - prev;
                prev = cum;
            }
        }
        let mut out = Vec::with_capacity(deltas.len());
        let mut cum = 0.0;
        for (bits, d) in deltas {
            cum += d;
            out.push((f64::from_bits(bits), cum));
        }
        out
    }
}

/// Nearest-rank percentile over cumulative `(le, count)` buckets as
/// returned by [`Exposition::histogram_buckets`]: the `le` bound of the
/// bucket holding the rank-th observation. Returns 0 for an empty set.
pub fn histogram_percentile(buckets: &[(f64, f64)], p: f64) -> f64 {
    let Some(&(_, total)) = buckets.last() else {
        return 0.0;
    };
    if total <= 0.0 {
        return 0.0;
    }
    let rank = ((p / 100.0) * total).ceil().clamp(1.0, total);
    for &(le, cum) in buckets {
        if cum >= rank {
            return le;
        }
    }
    buckets.last().map_or(0.0, |&(le, _)| le)
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses one sample line (`name` or `name{labels} value`).
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| err("unclosed label braces"))?;
            if close < brace {
                return Err(err("unclosed label braces"));
            }
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| err("missing value"))?;
            (&line[..sp], None::<(&str, &str)>)
        }
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let (labels, value_part) = match rest {
        Some((label_text, tail)) => (parse_labels(label_text, lineno, line)?, tail),
        None => (Vec::new(), &line[name_part.len()..]),
    };
    let value_text = value_part.trim();
    // Ignore an optional trailing timestamp (we never emit one, but the
    // format allows it).
    let value_text = value_text.split_whitespace().next().unwrap_or("");
    let value = parse_value(value_text).ok_or_else(|| err("bad sample value"))?;
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

fn parse_labels(text: &str, lineno: usize, line: &str) -> Result<Vec<(String, String)>, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        // Skip separators / trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        if !valid_label_name(&name) {
            return Err(err("invalid label name"));
        }
        if chars.next() != Some('"') {
            return Err(err("label value not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(err("bad escape in label value")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(err("unterminated label value"));
        }
        labels.push((name, value));
    }
    Ok(labels)
}

/// Parses a text exposition page, validating syntax and histogram
/// structure: sample names and label names match the format's charset,
/// every `histogram` family has a `+Inf` bucket per label-set with
/// `_count` equal to it, and cumulative bucket counts never decrease.
///
/// # Errors
///
/// Returns a message naming the offending line or family.
pub fn parse_text(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    let mut current: Option<Family> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            // HELP and free-form comments are legal and ignored.
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without a name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid family name {name:?}"));
                }
                let kind = parts
                    .next()
                    .ok_or(format!("line {lineno}: TYPE without a type"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown type {kind:?}"));
                }
                if let Some(done) = current.take() {
                    exposition.families.push(done);
                }
                current = Some(Family {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    samples: Vec::new(),
                });
            }
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let belongs = current.as_ref().is_some_and(|f| {
            sample.name == f.name
                || (f.kind == "histogram"
                    && [("_bucket"), ("_sum"), ("_count")]
                        .iter()
                        .any(|sfx| sample.name == format!("{}{sfx}", f.name)))
        });
        if belongs {
            current.as_mut().unwrap().samples.push(sample);
        } else {
            // A sample without a preceding TYPE is legal (untyped).
            if let Some(done) = current.take() {
                exposition.families.push(done);
            }
            current = Some(Family {
                name: sample.name.clone(),
                kind: "untyped".to_string(),
                samples: vec![sample],
            });
        }
    }
    if let Some(done) = current.take() {
        exposition.families.push(done);
    }
    for family in &exposition.families {
        if family.kind == "histogram" {
            validate_histogram(family)?;
        }
    }
    Ok(exposition)
}

/// Checks one histogram family's structural invariants.
fn validate_histogram(family: &Family) -> Result<(), String> {
    let bucket_name = format!("{}_bucket", family.name);
    let count_name = format!("{}_count", family.name);
    let mut groups: BucketGroups = BTreeMap::new();
    let mut counts: BTreeMap<LabelSet, f64> = BTreeMap::new();
    for s in &family.samples {
        if s.name == bucket_name {
            let le = s
                .label("le")
                .and_then(parse_value)
                .ok_or(format!("{}: bucket without numeric le", family.name))?;
            let mut base: LabelSet = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            base.sort();
            groups.entry(base).or_default().push((le, s.value));
        } else if s.name == count_name {
            let mut base = s.labels.clone();
            base.sort();
            counts.insert(base, s.value);
        }
    }
    for (base, mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let Some(&(last_le, last_cum)) = buckets.last() else {
            continue;
        };
        if last_le != f64::INFINITY {
            return Err(format!("{}: missing +Inf bucket", family.name));
        }
        let mut prev = 0.0;
        for &(le, cum) in &buckets {
            if cum < prev {
                return Err(format!(
                    "{}: bucket le={le} count decreases ({cum} < {prev})",
                    family.name
                ));
            }
            prev = cum;
        }
        if let Some(&count) = counts.get(&base) {
            if count != last_cum {
                return Err(format!(
                    "{}: _count {count} != +Inf bucket {last_cum}",
                    family.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("ipsim_serve_requests_total", &[("endpoint", "jobs")])
            .add(7);
        r.counter("ipsim_serve_requests_total", &[("endpoint", "stats")])
            .add(2);
        r.gauge("ipsim_serve_queue_depth", &[]).set(3);
        let h = r.histogram("ipsim_serve_request_micros", &[("endpoint", "jobs")]);
        for v in [5, 5, 90, 1_700] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn render_round_trips_through_parse() {
        let page = sample_registry().render_prometheus();
        let exp = parse_text(&page).expect("valid exposition");
        let requests = exp.family("ipsim_serve_requests_total").unwrap();
        assert_eq!(requests.kind, "counter");
        assert_eq!(requests.samples.len(), 2);
        assert_eq!(requests.samples[0].value, 7.0);
        assert_eq!(requests.samples[0].label("endpoint"), Some("jobs"));
        let depth = exp.family("ipsim_serve_queue_depth").unwrap();
        assert_eq!(depth.kind, "gauge");
        assert_eq!(depth.samples[0].value, 3.0);
        let hist = exp.family("ipsim_serve_request_micros").unwrap();
        assert_eq!(hist.kind, "histogram");
        let buckets = exp.histogram_buckets("ipsim_serve_request_micros", &[]);
        assert_eq!(buckets.last().unwrap().1, 4.0);
        assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
    }

    #[test]
    fn percentiles_from_scraped_buckets_match_the_histogram() {
        let r = sample_registry();
        let h = r.histogram("ipsim_serve_request_micros", &[("endpoint", "jobs")]);
        let exp = parse_text(&r.render_prometheus()).unwrap();
        let buckets = exp.histogram_buckets("ipsim_serve_request_micros", &[]);
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(histogram_percentile(&buckets, p), h.percentile(p) as f64);
        }
    }

    #[test]
    fn merging_label_sets_decumulates_first() {
        let r = Registry::new();
        r.histogram("ipsim_m", &[("e", "a")]).observe(1);
        r.histogram("ipsim_m", &[("e", "a")]).observe(100);
        r.histogram("ipsim_m", &[("e", "b")]).observe(1);
        let exp = parse_text(&r.render_prometheus()).unwrap();
        let merged = exp.histogram_buckets("ipsim_m", &[]);
        assert_eq!(merged.last().unwrap().1, 3.0);
        let only_b = exp.histogram_buckets("ipsim_m", &[("e", "b")]);
        assert_eq!(only_b.last().unwrap().1, 1.0);
    }

    #[test]
    fn parser_rejects_malformed_pages() {
        assert!(parse_text("1bad_name 5\n").is_err());
        assert!(parse_text("name{le=\"x\" 5\n").is_err(), "unclosed braces");
        assert!(parse_text("name not_a_number\n").is_err());
        assert!(parse_text("# TYPE m wat\nm 1\n").is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_count 1\nh_sum 3\n";
        assert!(parse_text(no_inf).unwrap_err().contains("+Inf"));
        let shrinking = "# TYPE h histogram\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 1\n";
        assert!(parse_text(shrinking).unwrap_err().contains("decreases"));
        let mismatch = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n";
        assert!(parse_text(mismatch).unwrap_err().contains("_count"));
    }

    #[test]
    fn label_escapes_round_trip() {
        let r = Registry::new();
        r.counter("ipsim_esc_total", &[("path", "a\\b\"c\nd")])
            .inc();
        let exp = parse_text(&r.render_prometheus()).unwrap();
        let s = &exp.family("ipsim_esc_total").unwrap().samples[0];
        assert_eq!(s.label("path"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn empty_page_parses_to_nothing() {
        let exp = parse_text("").unwrap();
        assert!(exp.families.is_empty());
        assert_eq!(histogram_percentile(&[], 50.0), 0.0);
    }
}
