//! # ipsim-obs
//!
//! Operational observability for the machinery that *runs* experiments —
//! the serving daemon, the worker pools, the shard engine — as opposed to
//! `ipsim-telemetry`, which observes the *simulated* machine. Two data
//! models, both std-only and lock-cheap on the hot path:
//!
//! * **metrics** — a process-global [`Registry`] of monotonic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s (see
//!   [`hist`]). Handles are `Arc`-backed atomics: registration takes a
//!   mutex once, every subsequent increment/observe is a relaxed atomic
//!   op. The whole registry renders to Prometheus text exposition
//!   (see [`prom`]) for `GET /v1/metrics`.
//! * **spans** — wall-clock intervals with parent links recorded into a
//!   bounded ring ([`SpanRecorder`]), exported as Chrome `trace_event`
//!   complete events (`ph:"X"`) in the same envelope ipsim-telemetry
//!   writes, so orchestration spans and sim-level telemetry merge into
//!   one timeline.
//!
//! All instrumentation is gated on one process-global flag: after
//! [`set_enabled`]`(false)` every record call is a single relaxed load
//! and an early return, which the `obs_overhead` guard bench bounds at
//! under 3% of kernel wall time. The flag defaults to *on* so binaries
//! get metrics without ceremony; nothing here ever writes to figure or
//! summary artifacts, so golden hashes are unaffected either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod registry;
pub mod span;

pub use hist::{HistSnapshot, Histogram};
pub use prom::{histogram_percentile, parse_text, Exposition, Family, Sample};
pub use registry::{Counter, Gauge, Registry};
pub use span::{SpanGuard, SpanRecorder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-global instrumentation switch, on by default. Checked with a
/// relaxed load by every counter/gauge/histogram/span record call.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all instrumentation on or off process-wide. Off, every record
/// call degenerates to one relaxed load; already-recorded state is kept
/// and still renders/exports.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global metrics registry. First call creates it; handles
/// registered here back `GET /v1/metrics` and the `sweep_report`
/// distribution sections.
pub fn metrics() -> &'static Registry {
    static METRICS: OnceLock<Registry> = OnceLock::new();
    METRICS.get_or_init(Registry::new)
}

/// The process-global span recorder (bounded ring of
/// [`span::DEFAULT_RING_CAPACITY`] completed spans).
pub fn spans() -> &'static SpanRecorder {
    static SPANS: OnceLock<SpanRecorder> = OnceLock::new();
    SPANS.get_or_init(SpanRecorder::default)
}
