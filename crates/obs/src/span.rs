//! Wall-clock spans with parent links and a bounded completion ring.
//!
//! A span is a named interval on a thread's timeline. The common case is
//! the RAII [`SpanGuard`] from [`SpanRecorder::span`]: it stamps the
//! start on creation, records the completed interval on drop, and uses a
//! thread-local stack so nested guards are parented automatically. For
//! intervals that start on one thread and end on another (a job's queue
//! wait: enqueued by the acceptor, claimed by a worker),
//! [`SpanRecorder::record`] takes explicit start/duration and parent.
//!
//! Completed spans land in a mutex-guarded ring that drops its oldest
//! entry when full — a long-lived daemon keeps the most recent window
//! and counts what it shed ([`SpanRecorder::dropped`]) instead of
//! growing without bound. Export is the same Chrome `trace_event`
//! envelope `ipsim-telemetry` writes, using complete events (`ph:"X"`,
//! `ts` + `dur` in microseconds), so one trace viewer shows daemon
//! orchestration above sim-level telemetry.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Completed spans kept by the default ring before the oldest is shed.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this recorder (1-based, allocation order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `"serve.request"` or `"harness.run"`.
    pub name: String,
    /// Start, in microseconds since the recorder's epoch.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub dur_micros: u64,
    /// Small per-process thread number (not the OS tid).
    pub tid: u64,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
}

/// Thread-safe span collector with a fixed-capacity completion ring.
pub struct SpanRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

thread_local! {
    /// Stack of open RAII span ids on this thread, innermost last.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's small id, assigned on first span.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl SpanRecorder {
    /// Creates a recorder keeping at most `capacity` completed spans.
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                spans: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Microseconds elapsed since this recorder's epoch — the timebase
    /// all spans share. Useful for cross-thread intervals measured with
    /// [`SpanRecorder::record`].
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens an RAII span: the returned guard records the completed
    /// interval when dropped, parented to the innermost guard already
    /// open on this thread. While instrumentation is disabled the guard
    /// is inert and records nothing.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !crate::enabled() {
            return SpanGuard {
                recorder: self,
                inner: None,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|open| {
            let mut open = open.borrow_mut();
            let parent = open.last().copied();
            open.push(id);
            parent
        });
        SpanGuard {
            recorder: self,
            inner: Some(OpenSpan {
                id,
                parent,
                name: name.to_string(),
                start_micros: self.now_micros(),
            }),
        }
    }

    /// Records an already-measured interval, for spans that cross
    /// threads or whose endpoints are stamped elsewhere. Returns the new
    /// span's id (0 when disabled and nothing was recorded).
    pub fn record(
        &self,
        name: &str,
        start_micros: u64,
        dur_micros: u64,
        parent: Option<u64>,
    ) -> u64 {
        if !crate::enabled() {
            return 0;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_micros,
            dur_micros,
            tid: TID.with(|t| *t),
        });
        id
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() == ring.capacity {
            ring.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.spans.push_back(record);
    }

    /// The innermost RAII span currently open on the calling thread, if
    /// any — lets code deep inside a request handler parent cross-thread
    /// work (e.g. a job's queue wait) to the enclosing request span
    /// without threading ids through every call.
    pub fn current(&self) -> Option<u64> {
        OPEN.with(|open| open.borrow().last().copied())
    }

    /// Completed spans shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed spans currently held, oldest first.
    pub fn completed(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap();
        ring.spans.iter().cloned().collect()
    }

    /// Writes the held spans as a Chrome `trace_event` document —
    /// complete events (`ph:"X"`) in the same envelope
    /// `ipsim_telemetry::sink::write_chrome_trace` uses, validated by
    /// the same `validate_chrome_trace`. Each span carries its id and
    /// parent id in `args`, so the tree survives ring eviction (an
    /// orphaned child still renders, its `parent` just points at an
    /// evicted id).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, r#"{{"traceEvents":["#)?;
        for (i, s) in self.completed().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                r#"{{"name":"{}","cat":"obs","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{"id":{},"parent":{}}}}}"#,
                json_escape(&s.name),
                s.start_micros,
                s.dur_micros,
                s.tid,
                s.id,
                s.parent.unwrap_or(0)
            )?;
        }
        write!(w, r#"],"displayTimeUnit":"ns"}}"#)?;
        Ok(())
    }
}

/// Minimal JSON string escaping for span names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_micros: u64,
}

/// RAII handle for an open span; records the interval on drop.
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    inner: Option<OpenSpan>,
}

impl SpanGuard<'_> {
    /// This span's id, for parenting cross-thread children. 0 when the
    /// guard is inert (instrumentation disabled at open).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let end = self.recorder.now_micros();
        OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop in LIFO order within a thread, so this span is
            // the innermost open one.
            debug_assert_eq!(stack.last().copied(), Some(open.id));
            stack.retain(|&id| id != open.id);
        });
        self.recorder.push(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_micros: open.start_micros,
            dur_micros: end.saturating_sub(open.start_micros),
            tid: TID.with(|t| *t),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_record_parent_links() {
        let rec = SpanRecorder::new(64);
        {
            let outer = rec.span("outer");
            let outer_id = outer.id();
            {
                let inner = rec.span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            let _sibling = rec.span("sibling");
        }
        let spans = rec.completed();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("outer");
        assert_eq!(outer.parent, None);
        assert_eq!(by_name("inner").parent, Some(outer.id));
        assert_eq!(by_name("sibling").parent, Some(outer.id));
        // Children close before (or when) the parent closes.
        for child in ["inner", "sibling"] {
            let c = by_name(child);
            assert!(c.start_micros >= outer.start_micros);
            assert!(
                c.start_micros + c.dur_micros <= outer.start_micros + outer.dur_micros,
                "{child} ends after its parent"
            );
        }
    }

    #[test]
    fn ring_sheds_oldest_and_counts_drops() {
        let rec = SpanRecorder::new(2);
        rec.record("a", 0, 1, None);
        rec.record("b", 1, 1, None);
        rec.record("c", 2, 1, None);
        let names: Vec<String> = rec.completed().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(rec.dropped(), 1);
    }

    // The disabled-path behaviour flips the process-global switch, so it
    // lives in tests/disabled.rs (its own process) rather than racing the
    // enabled-path unit tests here.

    #[test]
    fn chrome_export_escapes_names() {
        let rec = SpanRecorder::new(8);
        rec.record("quote\"back\\slash", 5, 10, None);
        let mut buf = Vec::new();
        rec.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(r#""name":"quote\"back\\slash""#));
        assert!(text.contains(r#""ph":"X""#));
        assert!(text.contains(r#""ts":5"#));
        assert!(text.contains(r#""dur":10"#));
    }
}
