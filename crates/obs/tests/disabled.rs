//! The disabled path: after `set_enabled(false)` every instrument call
//! must record nothing. Lives in its own integration test binary (own
//! process) because it flips the process-global switch that the
//! enabled-path tests rely on.

use ipsim_obs::{Registry, SpanRecorder};

#[test]
fn disabled_instrumentation_records_nothing() {
    assert!(ipsim_obs::enabled(), "instrumentation defaults to on");
    let r = Registry::new();
    let rec = SpanRecorder::new(8);
    let counter = r.counter("ipsim_test_total", &[]);
    let gauge = r.gauge("ipsim_test_depth", &[]);
    let hist = r.histogram("ipsim_test_micros", &[]);
    counter.inc();
    hist.observe(10);

    ipsim_obs::set_enabled(false);
    counter.add(100);
    gauge.set(42);
    hist.observe(99);
    {
        let g = rec.span("ghost");
        assert_eq!(g.id(), 0, "inert guard has no id");
    }
    assert_eq!(rec.record("ghost", 0, 1, None), 0);

    assert_eq!(counter.get(), 1, "counter froze while disabled");
    assert_eq!(gauge.get(), 0, "gauge froze while disabled");
    assert_eq!(hist.count(), 1, "histogram froze while disabled");
    assert!(
        rec.completed().is_empty(),
        "no spans recorded while disabled"
    );
    assert_eq!(rec.dropped(), 0);

    // Pre-disable state still renders.
    let page = r.render_prometheus();
    assert!(page.contains("ipsim_test_total 1"));

    ipsim_obs::set_enabled(true);
    counter.inc();
    assert_eq!(counter.get(), 2, "re-enabling resumes recording");
}
