//! The span exporter writes the same Chrome `trace_event` envelope as
//! ipsim-telemetry, proven by running the export through
//! `ipsim_telemetry::sink::validate_chrome_trace` — the shared validator
//! `telemetry_check` applies to span files on disk. No divergent JSON
//! readers: if this test passes, the smoke job's validation path accepts
//! the daemon's `spans.trace.json`.

use ipsim_obs::SpanRecorder;
use ipsim_telemetry::sink::validate_chrome_trace;

#[test]
fn span_export_passes_the_telemetry_validator() {
    let rec = SpanRecorder::new(64);
    {
        let _outer = rec.span("serve.request");
        let _inner = rec.span("serve.execute");
    }
    rec.record("serve.queue_wait", 3, 40, None);
    rec.record("odd name \"quoted\"\\slash", 0, 1, Some(1));
    let mut buf = Vec::new();
    rec.write_chrome_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let n = validate_chrome_trace(&text).expect("obs export is a valid chrome trace");
    assert_eq!(n, 4);
}

#[test]
fn empty_recorder_exports_an_empty_valid_trace() {
    let rec = SpanRecorder::new(4);
    let mut buf = Vec::new();
    rec.write_chrome_trace(&mut buf).unwrap();
    let n = validate_chrome_trace(&String::from_utf8(buf).unwrap()).unwrap();
    assert_eq!(n, 0);
}
