//! Property tests for the observability primitives: histogram accounting
//! exactness, the percentile-within-one-bucket guarantee against a sorted
//! reference, and span nesting validity under concurrent recording.

use std::sync::Arc;
use std::thread;

use ipsim_obs::hist::{bucket_index, bucket_upper};
use ipsim_obs::{Histogram, SpanRecorder};
use proptest::prelude::*;

/// Exact nearest-rank percentile over a sorted slice — the reference the
/// histogram estimate is compared against.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

proptest! {
    /// Every observation lands in exactly one bucket: the bucket sum and
    /// the count always equal the number of observations, and the sum of
    /// values is exact.
    #[test]
    fn bucket_sum_equals_observation_count(values in prop::collection::vec(0u64..1 << 48, 0..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        let bucket_sum: u64 = snap.buckets.iter().sum();
        prop_assert_eq!(bucket_sum, values.len() as u64);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    /// The histogram's nearest-rank estimate falls in the same bucket as
    /// the exact order statistic computed from a sorted copy — i.e. the
    /// estimate is within one bucket (≤25% relative error) of the truth.
    #[test]
    fn percentile_within_one_bucket_of_sorted_reference(
        values in prop::collection::vec(0u64..u64::MAX, 1..300),
        p in 0.0f64..100.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_percentile(&sorted, p);
        let estimate = h.percentile(p);
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(exact),
            "p{} estimate {} not in exact value {}'s bucket",
            p,
            estimate,
            exact
        );
        prop_assert_eq!(estimate, bucket_upper(bucket_index(exact)));
        prop_assert!(estimate >= exact);
    }
}

/// Concurrent RAII recording keeps nesting valid: every recorded parent
/// link points to a span on the same thread whose interval contains the
/// child's, and no spans are lost below the ring capacity.
#[test]
fn concurrent_span_nesting_stays_valid() {
    const THREADS: usize = 8;
    const ITERS: usize = 40;
    let rec = Arc::new(SpanRecorder::new(THREADS * ITERS * 3 + 16));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0..ITERS {
                    let outer = rec.span(&format!("outer.{t}"));
                    let _ = outer.id();
                    {
                        let _mid = rec.span("mid");
                        if i % 2 == 0 {
                            let _leaf = rec.span("leaf");
                        }
                    }
                }
            });
        }
    });
    let spans = rec.completed();
    assert_eq!(rec.dropped(), 0);
    assert_eq!(
        spans.len(),
        THREADS * ITERS * 2 + THREADS * ITERS / 2,
        "every guard recorded exactly once"
    );
    let by_id: std::collections::HashMap<u64, _> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids are unique");
    for s in &spans {
        let Some(parent) = s.parent else {
            assert!(
                s.name.starts_with("outer."),
                "only outer spans may be roots, got {}",
                s.name
            );
            continue;
        };
        let p = by_id
            .get(&parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {parent}", s.id));
        assert_eq!(p.tid, s.tid, "parent on a different thread");
        assert!(
            p.start_micros <= s.start_micros,
            "child starts before parent"
        );
        assert!(
            s.start_micros + s.dur_micros <= p.start_micros + p.dur_micros,
            "child {} ends after parent {}",
            s.name,
            p.name
        );
    }
}
