//! Facade-level tests: the public API paths shown in the README and the
//! examples must keep working.

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{Core, MemSystem, SystemBuilder, WorkloadSet};
use ipsim::prefetch::{FetchEvent, PrefetchEngine, PrefetchRequest, PrefetcherKind};
use ipsim::trace::{TraceWalker, Workload};
use ipsim::types::SystemConfig;

#[test]
fn readme_quickstart_path_works() {
    let workload = WorkloadSet::homogeneous(Workload::Web);
    let mut baseline = SystemBuilder::cmp4().build().unwrap();
    let base = baseline.run_workload(&workload, 20_000, 100_000);
    let mut system = SystemBuilder::cmp4()
        .prefetcher(PrefetcherKind::discontinuity_default())
        .install_policy(InstallPolicy::BypassL2UntilUseful)
        .build()
        .unwrap();
    let metrics = system.run_workload(&workload, 20_000, 100_000);
    assert!(metrics.l1i_miss_per_instr() < base.l1i_miss_per_instr());
    assert!(metrics.speedup_over(&base) > 1.0);
}

#[test]
fn custom_engines_plug_into_cores() {
    #[derive(Debug, Default)]
    struct CountingEngine {
        events: u64,
    }
    impl PrefetchEngine for CountingEngine {
        fn on_fetch(&mut self, ev: &FetchEvent, out: &mut Vec<PrefetchRequest>) {
            self.events += 1;
            if ev.miss {
                out.push(PrefetchRequest::sequential(ev.line.next()));
            }
        }
        fn name(&self) -> &'static str {
            "counting"
        }
    }

    let config = SystemConfig::single_core();
    let program = Workload::Web.build_program(1);
    let mut walker = TraceWalker::new(&program, Workload::Web.profile(), 0, 2);
    let mut core = Core::with_engine(0, &config.core, Box::new(CountingEngine::default()), None);
    let mut mem = MemSystem::new(&config.mem, InstallPolicy::InstallBoth);
    for _ in 0..100_000 {
        core.step(walker.next_op(), &mut mem);
    }
    assert_eq!(core.prefetcher_name(), "counting");
    let m = core.metrics();
    assert!(m.prefetch.generated > 0, "custom engine saw fetch events");
    assert!(
        m.prefetch.issued > 0,
        "custom engine's requests were issued"
    );
}

#[test]
fn every_public_prefetcher_kind_runs_end_to_end() {
    let kinds = [
        PrefetcherKind::None,
        PrefetcherKind::NextLineAlways,
        PrefetcherKind::NextLineOnMiss,
        PrefetcherKind::NextLineTagged,
        PrefetcherKind::NextNLineTagged { n: 2 },
        PrefetcherKind::Lookahead { n: 4 },
        PrefetcherKind::discontinuity_default(),
        PrefetcherKind::discontinuity_2nl(),
        PrefetcherKind::DiscontinuityGated {
            table_entries: 1024,
            ahead: 4,
            min_confidence: 2,
        },
        PrefetcherKind::Target {
            table_entries: 1024,
        },
        PrefetcherKind::WrongPath { next_line: true },
        PrefetcherKind::Markov {
            table_entries: 1024,
            ahead: 4,
        },
    ];
    let workload = WorkloadSet::homogeneous(Workload::Web);
    for kind in kinds {
        let mut system = SystemBuilder::single_core()
            .prefetcher(kind)
            .build()
            .unwrap();
        let m = system.run_workload(&workload, 20_000, 60_000);
        assert_eq!(m.instructions(), 60_000, "{}", kind.label());
        assert!(m.ipc() > 0.0, "{}", kind.label());
    }
}
