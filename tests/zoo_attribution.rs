//! Property tests for the zoo's shadow attribution: under arbitrary
//! workloads, seeds, install policies and scheme mixes, the per-scheme
//! counters must sum to the core's aggregate prefetch statistics — no
//! event lost, none double-credited — and the telemetry artifact rows
//! must mirror the in-process stats exactly.

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, WorkloadSet};
use ipsim::telemetry::TelemetryConfig;
use ipsim::trace::Workload;
use ipsim::zoo::ZooPlan;
use proptest::prelude::*;

/// The README's zoo table must document every registered scheme and all
/// of its knobs — adding a scheme without documenting it fails here.
#[test]
fn readme_zoo_table_lists_every_registered_scheme() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md readable");
    for def in ipsim::zoo::registry() {
        let row = readme
            .lines()
            .find(|l| l.starts_with(&format!("| `{}` |", def.name)))
            .unwrap_or_else(|| panic!("README zoo table has no row for scheme `{}`", def.name));
        for knob in def.knobs {
            assert!(
                row.contains(&format!("`{}`", knob.name)),
                "README row for `{}` does not mention knob `{}`",
                def.name,
                knob.name
            );
        }
    }
}

fn any_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Db),
        Just(Workload::TpcW),
        Just(Workload::JApp),
        Just(Workload::Web),
    ]
}

fn any_policy() -> impl Strategy<Value = InstallPolicy> {
    prop_oneof![
        Just(InstallPolicy::InstallBoth),
        Just(InstallPolicy::BypassL2UntilUseful),
    ]
}

/// Multi-scheme plans mixing legacy ports, natives, and knobbed variants —
/// the interleavings the attribution layer has to keep straight.
fn any_plan() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("nl+disc"),
        Just("nnl+stream"),
        Just("nl+nnl+disc+target"),
        Just("disc:ahead=2+mana+pmap"),
        Just("nl+nnl+disc+target+stream+mana+pmap"),
        Just("mana:degree=4,region_lines=16+pmap:depth=2+nl"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every scheme mix: Σ per-scheme counters == aggregate counters,
    /// attributions stay within the bound, telemetry rows mirror the
    /// in-process stats, and the whole thing is deterministic.
    #[test]
    fn scheme_counters_sum_to_aggregates(
        w in any_workload(),
        policy in any_policy(),
        plan_text in any_plan(),
        seed in 0u64..1000,
    ) {
        let plan = ZooPlan::parse(plan_text).expect("plan parses");
        let run = || {
            let mut ws = WorkloadSet::homogeneous(w);
            ws.walker_seed = seed;
            let mut system = SystemBuilder::cmp4()
                .zoo(plan.clone())
                .install_policy(policy)
                .build()
                .expect("valid config");
            system.enable_telemetry(TelemetryConfig::default());
            let metrics = system.run_workload(&ws, 30_000, 80_000);
            let stats = system.zoo_scheme_stats();
            let live = system.zoo_live_attributions();
            let telemetry = system.take_telemetry().expect("telemetry enabled");
            (metrics, stats, live, telemetry)
        };
        let (metrics, stats, live, telemetry) = run();

        // Every core hosts the full plan.
        let n_cores = 4usize;
        prop_assert_eq!(stats.len(), n_cores * plan.specs().len());

        // The sum property: per-scheme counters account for the aggregate
        // pipeline counters exactly, under arbitrary interleavings.
        let pf = metrics.prefetch();
        let sum = |f: fn(&ipsim::zoo::SchemeCounters) -> u64| -> u64 {
            stats.iter().map(|(_, _, c)| f(c)).sum()
        };
        prop_assert_eq!(sum(|c| c.generated), pf.generated, "generated");
        prop_assert_eq!(sum(|c| c.issued), pf.issued, "issued");
        prop_assert_eq!(sum(|c| c.useful), pf.useful, "useful");
        prop_assert_eq!(sum(|c| c.late), pf.late, "late");
        // Per-scheme sanity. Counters reset at the measurement-window
        // boundary while attributions persist, so a line issued during
        // warm-up may fill/use/evict during measurement — `filled` can
        // legitimately exceed `issued` within the window. Only `late`,
        // incremented strictly alongside `useful`, admits an invariant.
        for (core, label, c) in &stats {
            prop_assert!(c.late <= c.useful, "core {core} {label}: late {} > useful {}", c.late, c.useful);
        }

        // Shadow occupancy stays within the per-core bound (L1I lines +
        // MSHRs), i.e. attribution never leaks.
        let cfg = ipsim::types::SystemConfig::cmp4();
        let bound = n_cores * (cfg.core.l1i.lines() as usize + cfg.core.mshrs as usize);
        prop_assert!(live <= bound, "live {live} > bound {bound}");

        // Telemetry rows are the same stats, row for row.
        prop_assert_eq!(telemetry.zoo.len(), stats.len());
        for (row, (core, label, c)) in telemetry.zoo.iter().zip(&stats) {
            prop_assert_eq!(row.core, *core);
            prop_assert_eq!(&row.scheme, label);
            prop_assert_eq!(row.generated, c.generated);
            prop_assert_eq!(row.issued, c.issued);
            prop_assert_eq!(row.filled, c.filled);
            prop_assert_eq!(row.useful, c.useful);
            prop_assert_eq!(row.late, c.late);
            prop_assert_eq!(row.evicted_used, c.evicted_used);
            prop_assert_eq!(row.evicted_unused, c.evicted_unused);
        }

        // And all of it is deterministic.
        let (metrics2, stats2, live2, _) = run();
        prop_assert_eq!(metrics.instructions(), metrics2.instructions());
        prop_assert_eq!(metrics.prefetch(), metrics2.prefetch());
        prop_assert_eq!(stats, stats2);
        prop_assert_eq!(live, live2);
    }
}
