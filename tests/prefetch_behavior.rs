//! Integration tests for the paper's headline prefetching claims, on short
//! runs of the full system.

use ipsim::cache::InstallPolicy;
use ipsim::cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim::prefetch::PrefetcherKind;
use ipsim::trace::Workload;
use ipsim::types::SystemConfig;

const WARM: u64 = 400_000;
const MEASURE: u64 = 800_000;

fn run(kind: PrefetcherKind, policy: InstallPolicy, ws: &WorkloadSet) -> SystemMetrics {
    let mut system = SystemBuilder::cmp4()
        .prefetcher(kind)
        .install_policy(policy)
        .build()
        .expect("valid config");
    system.run_workload(ws, WARM, MEASURE)
}

fn baseline(ws: &WorkloadSet) -> SystemMetrics {
    run(PrefetcherKind::None, InstallPolicy::InstallBoth, ws)
}

#[test]
fn scheme_ordering_matches_figure_5() {
    // Discontinuity < next-4-line < next-line on L1I misses.
    let ws = WorkloadSet::homogeneous(Workload::Db);
    let base = baseline(&ws);
    let nl = run(
        PrefetcherKind::NextLineOnMiss,
        InstallPolicy::InstallBoth,
        &ws,
    );
    let n4l = run(
        PrefetcherKind::NextNLineTagged { n: 4 },
        InstallPolicy::InstallBoth,
        &ws,
    );
    let disc = run(
        PrefetcherKind::discontinuity_default(),
        InstallPolicy::InstallBoth,
        &ws,
    );
    let r = |m: &SystemMetrics| m.l1i_miss_ratio_vs(&base);
    assert!(
        r(&disc) < r(&n4l),
        "discontinuity {} vs n4l {}",
        r(&disc),
        r(&n4l)
    );
    assert!(r(&n4l) < r(&nl), "n4l {} vs next-line {}", r(&n4l), r(&nl));
    assert!(r(&nl) < 1.0, "next-line must help: {}", r(&nl));
    assert!(
        r(&disc) < 0.45,
        "discontinuity must eliminate most L1I misses: {}",
        r(&disc)
    );
}

#[test]
fn discontinuity_eliminates_most_l2_instruction_misses() {
    let ws = WorkloadSet::homogeneous(Workload::JApp);
    let base = baseline(&ws);
    let disc = run(
        PrefetcherKind::discontinuity_default(),
        InstallPolicy::InstallBoth,
        &ws,
    );
    let ratio = disc.l2_instr_miss_ratio_vs(&base);
    assert!(ratio < 0.35, "L2I ratio {ratio}");
}

#[test]
fn accuracy_falls_with_aggressiveness() {
    // Figure 9(i): next-line most accurate, discontinuity least; the 2NL
    // variant recovers accuracy.
    let ws = WorkloadSet::homogeneous(Workload::Db);
    let acc = |kind| run(kind, InstallPolicy::BypassL2UntilUseful, &ws).prefetch_accuracy();
    let nl = acc(PrefetcherKind::NextLineOnMiss);
    let n4l = acc(PrefetcherKind::NextNLineTagged { n: 4 });
    let disc = acc(PrefetcherKind::discontinuity_default());
    let disc2 = acc(PrefetcherKind::discontinuity_2nl());
    assert!(nl > n4l, "next-line {nl} vs n4l {n4l}");
    assert!(n4l > disc, "n4l {n4l} vs discontinuity {disc}");
    assert!(disc2 > disc, "2NL {disc2} vs 4NL {disc}");
}

#[test]
fn aggressive_prefetching_pollutes_l2_data_and_bypass_cures_it() {
    let ws = WorkloadSet::homogeneous(Workload::JApp);
    let base = baseline(&ws);
    let polluted = run(
        PrefetcherKind::discontinuity_default(),
        InstallPolicy::InstallBoth,
        &ws,
    );
    let bypass = run(
        PrefetcherKind::discontinuity_default(),
        InstallPolicy::BypassL2UntilUseful,
        &ws,
    );
    let p = polluted.l2_data_miss_ratio_vs(&base);
    let b = bypass.l2_data_miss_ratio_vs(&base);
    assert!(p > 1.05, "pollution must be visible: {p}");
    assert!(b < p, "bypass must reduce pollution: {b} vs {p}");
    assert!(b < 1.12, "bypass must mostly remove pollution: {b}");
}

#[test]
fn every_paper_scheme_improves_performance() {
    let ws = WorkloadSet::homogeneous(Workload::TpcW);
    let base = baseline(&ws);
    for kind in PrefetcherKind::PAPER_SCHEMES {
        let m = run(kind, InstallPolicy::BypassL2UntilUseful, &ws);
        let speedup = m.speedup_over(&base);
        assert!(
            speedup > 1.02,
            "{}: speedup {speedup} too small",
            kind.label()
        );
    }
}

#[test]
fn limit_study_ordering_matches_figure_4() {
    use ipsim::cpu::LimitSpec;
    let ws = WorkloadSet::homogeneous(Workload::Db);
    let speedup = |spec: LimitSpec| {
        let mut system = SystemBuilder::new(SystemConfig::cmp4())
            .limit(spec)
            .build()
            .expect("valid config");
        let m = system.run_workload(&ws, WARM, MEASURE);
        m.speedup_over(&baseline(&ws))
    };
    let seq = speedup(LimitSpec::FIG4_SETS[0]);
    let branch = speedup(LimitSpec::FIG4_SETS[1]);
    let all = speedup(LimitSpec::FIG4_SETS[5]);
    assert!(all > seq, "all {all} vs sequential-only {seq}");
    assert!(all > branch, "all {all} vs branch-only {branch}");
    assert!(seq > 1.0 && branch > 1.0);
}

#[test]
fn smaller_tables_retain_significant_coverage() {
    // Figure 10: 2048 entries close to 8192; 256 still beats next-4-line.
    let ws = WorkloadSet::homogeneous(Workload::Db);
    let base = baseline(&ws);
    let cover = |entries| {
        let m = run(
            PrefetcherKind::Discontinuity {
                table_entries: entries,
                ahead: 4,
            },
            InstallPolicy::BypassL2UntilUseful,
            &ws,
        );
        m.l1i_coverage_vs(&base)
    };
    let big = cover(8192);
    let quarter = cover(2048);
    let tiny = cover(256);
    let n4l = run(
        PrefetcherKind::NextNLineTagged { n: 4 },
        InstallPolicy::BypassL2UntilUseful,
        &ws,
    )
    .l1i_coverage_vs(&base);
    assert!(quarter > big - 0.12, "2048 {quarter} vs 8192 {big}");
    assert!(tiny >= n4l - 0.03, "256-entry {tiny} vs next-4-line {n4l}");
}
