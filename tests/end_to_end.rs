//! End-to-end integration tests: the full stack (trace → caches → cores →
//! shared L2 → metrics) must reproduce the paper's qualitative baseline
//! behaviour on short runs.

use ipsim::cpu::{SystemBuilder, SystemMetrics, WorkloadSet};
use ipsim::trace::Workload;
use ipsim::types::stats::MissGroup;
use ipsim::types::{CacheConfig, SystemConfig};

const WARM: u64 = 400_000;
const MEASURE: u64 = 800_000;

fn baseline(config: SystemConfig, ws: &WorkloadSet) -> SystemMetrics {
    let mut system = SystemBuilder::new(config).build().expect("valid config");
    system.run_workload(ws, WARM, MEASURE)
}

#[test]
fn all_workloads_have_substantial_l1i_miss_rates() {
    for w in Workload::ALL {
        let m = baseline(SystemConfig::single_core(), &WorkloadSet::homogeneous(w));
        let mpi = m.l1i_miss_per_instr();
        assert!(
            (0.008..0.045).contains(&mpi),
            "{}: L1I miss/instr {mpi} outside the commercial-workload band",
            w.name()
        );
    }
}

#[test]
fn japp_has_the_highest_l1i_miss_rate() {
    let rates: Vec<(Workload, f64)> = Workload::ALL
        .iter()
        .map(|w| {
            let m = baseline(SystemConfig::single_core(), &WorkloadSet::homogeneous(*w));
            (*w, m.l1i_miss_per_instr())
        })
        .collect();
    let japp = rates
        .iter()
        .find(|(w, _)| *w == Workload::JApp)
        .expect("jApp measured")
        .1;
    for (w, r) in &rates {
        assert!(
            *r <= japp * 1.02,
            "{} ({r}) exceeds jApp ({japp})",
            w.name()
        );
    }
}

#[test]
fn miss_breakdown_matches_paper_shape() {
    // Sequential misses 40-60%; branches and calls both significant;
    // traps negligible (Figure 3).
    let m = baseline(
        SystemConfig::single_core(),
        &WorkloadSet::homogeneous(Workload::Db),
    );
    let bd = m.l1i_miss_breakdown();
    let total = bd.total() as f64;
    let seq = bd.group_total(MissGroup::Sequential) as f64 / total;
    let branch = bd.group_total(MissGroup::Branch) as f64 / total;
    let call = bd.group_total(MissGroup::FunctionCall) as f64 / total;
    let trap = bd.group_total(MissGroup::Trap) as f64 / total;
    assert!((0.35..0.70).contains(&seq), "sequential share {seq}");
    assert!(branch > 0.10, "branch share {branch}");
    assert!(call > 0.10, "call share {call}");
    assert!(trap < 0.01, "trap share {trap}");
}

#[test]
fn cmp_l2_instruction_misses_exceed_single_core() {
    // Needs a longer warm-up than the other tests: with short runs the
    // single-core 2 MB L2 is still cold (4 CMP cores warm the shared L2
    // four times faster per-core), which inverts the comparison.
    let baseline = |config: SystemConfig, ws: &WorkloadSet| {
        let mut system = SystemBuilder::new(config).build().expect("valid config");
        system.run_workload(ws, 2_500_000, 1_000_000)
    };
    for w in [Workload::Db, Workload::JApp] {
        let single = baseline(SystemConfig::single_core(), &WorkloadSet::homogeneous(w));
        let cmp = baseline(SystemConfig::cmp4(), &WorkloadSet::homogeneous(w));
        assert!(
            cmp.l2_instr_miss_per_instr() >= single.l2_instr_miss_per_instr() * 0.9,
            "{}: CMP L2I {} vs single {}",
            w.name(),
            cmp.l2_instr_miss_per_instr(),
            single.l2_instr_miss_per_instr()
        );
    }
}

#[test]
fn mixed_workload_has_the_worst_cmp_l2_instruction_miss_rate() {
    let mix = baseline(SystemConfig::cmp4(), &WorkloadSet::mixed());
    for w in Workload::ALL {
        let app = baseline(SystemConfig::cmp4(), &WorkloadSet::homogeneous(w));
        assert!(
            mix.l2_instr_miss_per_instr() >= app.l2_instr_miss_per_instr() * 0.9,
            "Mixed ({}) not worst vs {} ({})",
            mix.l2_instr_miss_per_instr(),
            w.name(),
            app.l2_instr_miss_per_instr()
        );
    }
}

#[test]
fn larger_lines_and_capacity_reduce_l1i_misses() {
    // The Figure 1 sweeps, in miniature.
    let ws = WorkloadSet::homogeneous(Workload::TpcW);
    let run_with = |l1i: CacheConfig| {
        let mut config = SystemConfig::single_core();
        config.core.l1i = l1i;
        baseline(config, &ws).l1i_miss_per_instr()
    };
    let default = run_with(CacheConfig::new(32 << 10, 4, 64).unwrap());
    let big_lines = run_with(CacheConfig::new(32 << 10, 4, 256).unwrap());
    let big_cache = run_with(CacheConfig::new(128 << 10, 4, 64).unwrap());
    let small_cache = run_with(CacheConfig::new(16 << 10, 4, 64).unwrap());
    assert!(big_lines < default, "256B lines: {big_lines} vs {default}");
    assert!(big_cache < default, "128KB: {big_cache} vs {default}");
    assert!(small_cache > default, "16KB: {small_cache} vs {default}");
}

#[test]
fn whole_system_runs_are_deterministic() {
    let run = || {
        let m = baseline(SystemConfig::cmp4(), &WorkloadSet::mixed());
        (
            m.instructions(),
            m.cores.iter().map(|c| c.cycles).collect::<Vec<_>>(),
            m.l1i_miss_breakdown().total(),
            m.mem.l2_data_misses,
            m.bus_transfers,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ipc_is_physically_plausible() {
    for w in Workload::ALL {
        let m = baseline(SystemConfig::single_core(), &WorkloadSet::homogeneous(w));
        let ipc = m.ipc();
        assert!(
            (0.05..=3.0).contains(&ipc),
            "{}: IPC {ipc} outside [0.05, 3.0] (issue width is 3)",
            w.name()
        );
    }
}
