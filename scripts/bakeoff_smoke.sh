#!/usr/bin/env bash
# Smoke test of the prefetcher-zoo bake-off pipeline, end to end:
#
#   1. a small zoo sweep (`sim_report --bakeoff --smoke`) runs the full
#      contender plan against a no-prefetch baseline on all five
#      workload schedules, staging zoo.tsv telemetry artifacts;
#   2. the rendered table must cover every contender scheme on every
#      workload;
#   3. re-running with a different worker count over cold caches must
#      reproduce the table byte for byte;
#   4. the table's hash must match the committed golden — the bake-off
#      is a deterministic, seeded measurement, so any drift means the
#      simulation or a scheme changed. Re-pin GOLDEN_SHA256 below when
#      the change is intentional (new scheme, retuned knobs, table
#      format) and say so in the commit.
#
# Needs: target/release/sim_report (make build), sha256sum.
set -euo pipefail

SIM_REPORT=${SIM_REPORT:-target/release/sim_report}
GOLDEN_SHA256="0fde2856c59f7ec20cbafb67cae6d4e9874f98bda4c1f0b3afaa31c221efdf92"
SCHEMES="nl nnl disc target stream mana pmap"
WORKLOADS="DB TPC-W jApp Web Mixed"
ROOT=$(mktemp -d /tmp/ipsim-bakeoff-smoke.XXXXXX)

cleanup() { rm -rf "${ROOT}"; }
trap cleanup EXIT

fail() {
    echo "bakeoff_smoke: FAIL: $*" >&2
    exit 1
}

run_sweep() { # $1 = tag, $2 = jobs
    IPSIM_CACHE_DIR="${ROOT}/$1/cache" \
    IPSIM_TRACE_DIR="${ROOT}/$1/traces" \
    IPSIM_TELEMETRY_DIR="${ROOT}/$1/telemetry" \
    IPSIM_RUNLOG="${ROOT}/$1/runlog.tsv" \
        "${SIM_REPORT}" --bakeoff --smoke --jobs "$2" 2>/dev/null
}

[ -x "${SIM_REPORT}" ] || fail "missing ${SIM_REPORT} (run: cargo build --release)"

echo "bakeoff_smoke: sweep 1 (4 workers)..."
run_sweep a 4 > "${ROOT}/table_a.txt"

for scheme in ${SCHEMES}; do
    n=$(awk -v s="${scheme}" '{for (i=1;i<=NF;i++) if ($i==s) c++} END {print c+0}' \
        "${ROOT}/table_a.txt")
    [ "${n}" -eq 5 ] || fail "scheme ${scheme}: expected 5 rows, found ${n}"
done
for workload in ${WORKLOADS}; do
    grep -q "^${workload}" "${ROOT}/table_a.txt" || fail "workload ${workload} missing"
done
echo "bakeoff_smoke: table covers all $(echo ${SCHEMES} | wc -w) schemes x 5 workloads"

echo "bakeoff_smoke: sweep 2 (1 worker, cold caches)..."
run_sweep b 1 > "${ROOT}/table_b.txt"
cmp -s "${ROOT}/table_a.txt" "${ROOT}/table_b.txt" \
    || fail "tables differ across worker counts (not deterministic)"
echo "bakeoff_smoke: byte-identical across worker counts"

actual=$(sha256sum "${ROOT}/table_a.txt" | cut -d' ' -f1)
[ "${actual}" = "${GOLDEN_SHA256}" ] \
    || fail "golden hash mismatch: expected ${GOLDEN_SHA256}, got ${actual} \
(intentional change? re-pin GOLDEN_SHA256 in scripts/bakeoff_smoke.sh)"
echo "bakeoff_smoke: golden hash OK"
echo "bakeoff_smoke: PASS"
