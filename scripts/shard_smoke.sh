#!/usr/bin/env bash
# Smoke test of the sharded sweep engine, end to end with real processes:
#
#   1. a mini-sweep (fig02 + fig05 at tiny IPSIM_RUN_LENGTHS windows)
#      runs once with --shards 1 and once with --shards 2 (the parent
#      re-execs itself for shard 1, runs shard 0 inline, then renders
#      the merge from the shared run cache);
#   2. both figure files must be byte-identical and match the committed
#      goldens — shard count must never change a rendered byte. Re-pin
#      GOLDEN_* below only when simulated behaviour changes on purpose,
#      and say so in the commit;
#   3. a warm re-run over the sharded directory must render zero figures
#      (the incremental manifest proves both outputs current);
#   4. `sweep_report --stable` over the solo and sharded directories
#      must produce identical bytes (the stable view is independent of
#      how the sweep was executed).
#
# Needs: target/release/{all_figures,sweep_report} (make build), sha256sum.
set -euo pipefail

ALL_FIGURES=${ALL_FIGURES:-$(pwd)/target/release/all_figures}
SWEEP_REPORT=${SWEEP_REPORT:-$(pwd)/target/release/sweep_report}
GOLDEN_FIG02="071f7ee4f5ed0287e8f9e46f459a8c44f807bf1dfb3d59850112ee56fe02263a"
GOLDEN_FIG05="3273ed53fcce5d75222e51f610f8b4e71b5c1b0cf51186f1a0e24b029c00194c"
ROOT=$(mktemp -d /tmp/ipsim-shard-smoke.XXXXXX)

cleanup() { rm -rf "${ROOT}"; }
trap cleanup EXIT

fail() {
    echo "shard_smoke: FAIL: $*" >&2
    exit 1
}

run_sweep() { # $1 = tag, $2 = shards
    local dir="${ROOT}/$1"
    mkdir -p "${dir}"
    (
        cd "${dir}"
        IPSIM_RUN_LENGTHS="10000/20000" \
        IPSIM_CACHE_DIR="${dir}/cache" \
        IPSIM_TRACE_DIR="${dir}/traces" \
        IPSIM_RUNLOG="${dir}/runlog.tsv" \
            "${ALL_FIGURES}" --figures fig02,fig05 --jobs 1 --shards "$2" \
            2>"${dir}/stderr.txt"
    )
}

report_stable() { # $1 = tag
    local dir="${ROOT}/$1"
    "${SWEEP_REPORT}" --stable --runlog "${dir}/runlog.tsv" \
        --cache "${dir}/cache" --telemetry "${dir}/telemetry"
}

[ -x "${ALL_FIGURES}" ] || fail "missing ${ALL_FIGURES} (run: cargo build --release)"
[ -x "${SWEEP_REPORT}" ] || fail "missing ${SWEEP_REPORT} (run: cargo build --release)"

echo "shard_smoke: mini-sweep, 1 shard..."
run_sweep solo 1 > "${ROOT}/solo.out"

echo "shard_smoke: mini-sweep, 2 shards (real child process)..."
run_sweep sharded 2 > "${ROOT}/sharded.out"
grep -q "^# batch shard " "${ROOT}/sharded/runlog.tsv" \
    || fail "no shard batch markers in the sharded runlog"

for fig in fig02 fig05; do
    cmp -s "${ROOT}/solo/results/${fig}.txt" "${ROOT}/sharded/results/${fig}.txt" \
        || fail "${fig}: shard count changed the rendered bytes"
done
actual02=$(sha256sum "${ROOT}/sharded/results/fig02.txt" | cut -d' ' -f1)
actual05=$(sha256sum "${ROOT}/sharded/results/fig05.txt" | cut -d' ' -f1)
[ "${actual02}" = "${GOLDEN_FIG02}" ] \
    || fail "fig02 golden mismatch: expected ${GOLDEN_FIG02}, got ${actual02}"
[ "${actual05}" = "${GOLDEN_FIG05}" ] \
    || fail "fig05 golden mismatch: expected ${GOLDEN_FIG05}, got ${actual05}"
echo "shard_smoke: figures byte-identical across shard counts, goldens OK"

echo "shard_smoke: warm re-run (must render nothing)..."
run_sweep sharded 2 > "${ROOT}/warm.out"
grep -q "(0 rendered, 2 unchanged)" "${ROOT}/warm.out" \
    || fail "warm re-run rendered figures: $(grep 'figures (' "${ROOT}/warm.out" || true)"
echo "shard_smoke: warm re-run skipped both figures"

report_stable solo > "${ROOT}/report_solo.txt"
report_stable sharded > "${ROOT}/report_sharded.txt"
cmp -s "${ROOT}/report_solo.txt" "${ROOT}/report_sharded.txt" \
    || fail "sweep_report --stable differs between solo and sharded runs"
echo "shard_smoke: stable sweep report identical across execution shapes"
echo "shard_smoke: PASS"
