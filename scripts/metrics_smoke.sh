#!/usr/bin/env bash
# End-to-end smoke test of the observability pipeline with a real daemon:
#
#   1. `GET /v1/metrics` serves valid Prometheus text exposition before
#      any traffic, with every core serve family pre-registered;
#   2. after a real job executes, the request/queue/execute histograms
#      and job counters have moved, and `ops_report --require` validates
#      the scrape offline;
#   3. `/v1/stats` carries per-endpoint latency percentiles;
#   4. a graceful drain exports `spans.trace.json`, which the shared
#      Chrome-trace validator (via telemetry_check) accepts and
#      `ops_report --spans` folds into a per-span table.
#
# Needs: target/release/{ipsim_serve,ops_report,telemetry_check}
# (make build), curl, jq.
set -euo pipefail

SERVE=${SERVE:-target/release/ipsim_serve}
OPS_REPORT=${OPS_REPORT:-target/release/ops_report}
TELEMETRY_CHECK=${TELEMETRY_CHECK:-target/release/telemetry_check}
PORT=$((21000 + RANDOM % 20000))
ADDR="127.0.0.1:${PORT}"
ROOT=$(mktemp -d /tmp/ipsim-metrics-smoke.XXXXXX)
DAEMON_PID=""

SPEC='{"v":1,"runs":[{"config":"single_core","workload":"db","prefetcher":"nl_tagged","policy":"install_both","warm":50000,"measure":100000}]}'

# Families the scrape must always carry (pre-registered at Service::open).
REQUIRED="ipsim_serve_requests_total,ipsim_serve_request_micros,ipsim_serve_queue_depth,ipsim_serve_inflight_jobs,ipsim_serve_jobs_submitted_total,ipsim_serve_dedup_total,ipsim_serve_rejected_total,ipsim_serve_jobs_total,ipsim_serve_queue_wait_micros,ipsim_serve_job_execute_micros"

cleanup() {
    [ -n "${DAEMON_PID}" ] && kill -9 "${DAEMON_PID}" 2>/dev/null || true
    rm -rf "${ROOT}"
}
trap cleanup EXIT

fail() {
    echo "metrics_smoke: FAIL: $*" >&2
    exit 1
}

echo "== boot =="
"${SERVE}" --bind "${ADDR}" --dir "${ROOT}/serve" --cache "${ROOT}/cache" \
    --traces none --workers 2 >>"${ROOT}/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    curl -sf "http://${ADDR}/v1/healthz" >/dev/null 2>&1 && break
    kill -0 "${DAEMON_PID}" 2>/dev/null || fail "daemon died during boot"
    sleep 0.1
done
curl -sf "http://${ADDR}/v1/healthz" >/dev/null || fail "daemon never answered healthz"

echo "== cold scrape: valid exposition, every family pre-registered =="
CTYPE=$(curl -s -o "${ROOT}/cold.prom" -w '%{content_type}' "http://${ADDR}/v1/metrics")
case "${CTYPE}" in
text/plain*) ;;
*) fail "unexpected /v1/metrics content type '${CTYPE}'" ;;
esac
"${OPS_REPORT}" --metrics "${ROOT}/cold.prom" --require "${REQUIRED}" >/dev/null ||
    fail "cold scrape missing required families"
echo "   ok: cold scrape parses and carries all $(echo "${REQUIRED}" | tr ',' '\n' | wc -l) families"

echo "== run a job, metrics move =="
ID=$(curl -s -X POST -H 'Content-Type: application/json' -H 'X-Client-Id: smoke' \
    -d "${SPEC}" "http://${ADDR}/v1/jobs" | jq -r .id)
[ "${ID}" != "null" ] || fail "submit returned no job id"
for _ in $(seq 1 600); do
    STATE=$(curl -s "http://${ADDR}/v1/jobs/${ID}" | jq -r .state)
    [ "${STATE}" = "done" ] && break
    [ "${STATE}" = "failed" ] && fail "job failed"
    sleep 0.2
done
[ "${STATE}" = "done" ] || fail "job never finished"

curl -s "http://${ADDR}/v1/metrics" >"${ROOT}/warm.prom"
"${OPS_REPORT}" --metrics "${ROOT}/warm.prom" --require "${REQUIRED}" >"${ROOT}/ops.txt" ||
    fail "warm scrape failed validation"
grep -q 'ipsim_serve_jobs_total{state="done"} 1' "${ROOT}/warm.prom" ||
    fail "jobs_total{state=done} did not reach 1"
grep -q 'ipsim_serve_job_execute_micros_count 1' "${ROOT}/warm.prom" ||
    fail "execute histogram did not record the run"
grep -q '== histograms ==' "${ROOT}/ops.txt" || fail "ops_report rendered no histogram table"
echo "   ok: job counters and execute histogram moved; ops_report renders"

echo "== /v1/stats carries latency percentiles =="
curl -s "http://${ADDR}/v1/stats" | jq -e '.latency_micros.jobs.p50' >/dev/null ||
    fail "stats has no latency_micros.jobs.p50"
echo "   ok: per-endpoint percentiles in /v1/stats"

echo "== graceful drain exports a valid span trace =="
kill -TERM "${DAEMON_PID}"
wait "${DAEMON_PID}" 2>/dev/null || true
DAEMON_PID=""
SPANS="${ROOT}/serve/spans.trace.json"
[ -s "${SPANS}" ] || fail "daemon wrote no ${SPANS}"
"${TELEMETRY_CHECK}" "${SPANS}" || fail "span trace failed the shared Chrome-trace validator"
"${OPS_REPORT}" --spans "${SPANS}" | grep -q 'serve.request' ||
    fail "ops_report found no serve.request spans"
echo "   ok: spans.trace.json validates and folds into a span table"

echo "metrics_smoke: PASS"
