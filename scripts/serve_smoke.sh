#!/usr/bin/env bash
# End-to-end smoke test of the serving daemon with real processes and
# real signals — the parts in-process tests cannot exercise:
#
#   1. byte-identity: two independent daemons with cold caches simulate
#      the same spec and must serve byte-identical result TSV;
#   2. dedup: resubmitting the spec answers instantly from the run cache;
#   3. crash safety: kill -9 with a 10-job queue in flight, restart over
#      the same journal, every job reaches a terminal state;
#   4. backpressure: a full queue answers 429, not a hang.
#
# Needs: target/release/{ipsim_serve,serve_load} (make build), curl, jq.
set -euo pipefail

SERVE=${SERVE:-target/release/ipsim_serve}
PORT=$((21000 + RANDOM % 20000))
ADDR="127.0.0.1:${PORT}"
ROOT=$(mktemp -d /tmp/ipsim-serve-smoke.XXXXXX)
DAEMON_PID=""

SPEC='{"v":1,"runs":[{"config":"single_core","workload":"db","prefetcher":"nl_tagged","policy":"install_both","warm":200000,"measure":400000}]}'

cleanup() {
    [ -n "${DAEMON_PID}" ] && kill -9 "${DAEMON_PID}" 2>/dev/null || true
    rm -rf "${ROOT}"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

# boot <dir-tag> <extra flags...>: starts a daemon and waits for healthz.
boot() {
    local tag=$1
    shift
    "${SERVE}" --bind "${ADDR}" --dir "${ROOT}/${tag}/serve" \
        --cache "${ROOT}/${tag}/cache" --traces none "$@" \
        >>"${ROOT}/${tag}.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "http://${ADDR}/v1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "${DAEMON_PID}" 2>/dev/null || fail "daemon died during boot"
        sleep 0.1
    done
    fail "daemon never answered healthz"
}

stop() {
    kill -TERM "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
    DAEMON_PID=""
}

submit() {
    curl -s -X POST -H 'Content-Type: application/json' \
        -H 'X-Client-Id: smoke' -d "$1" "http://${ADDR}/v1/jobs"
}

wait_done() {
    local id=$1
    for _ in $(seq 1 600); do
        local state
        state=$(curl -s "http://${ADDR}/v1/jobs/${id}" | jq -r .state)
        case "${state}" in
        done) return 0 ;;
        failed) fail "job ${id} failed" ;;
        esac
        sleep 0.2
    done
    fail "job ${id} never finished"
}

# Runs SPEC on a freshly booted daemon with a cold cache and writes the
# result TSV payload (the summary line, without the key/status columns)
# to $2. Not a command substitution: the booted daemon must stay in the
# parent shell so DAEMON_PID and stop() work.
run_cold() {
    local tag=$1 out=$2
    boot "${tag}" --workers 2
    local id
    id=$(submit "${SPEC}" | jq -r .id)
    [ "${id}" != "null" ] || fail "submit returned no job id"
    wait_done "${id}"
    curl -s "http://${ADDR}/v1/jobs/${id}/result?format=tsv" |
        grep -v '^#' | cut -f3- >"${out}"
}

echo "== byte-identity across independent daemons =="
run_cold a "${ROOT}/a.tsv"
# Dedup on the warm daemon: same spec answers instantly from the cache.
DEDUP=$(submit "${SPEC}" | jq -r .dedup)
[ "${DEDUP}" = "cache" ] || fail "expected dedup=cache, got '${DEDUP}'"
stop
run_cold b "${ROOT}/b.tsv"
stop
[ -s "${ROOT}/a.tsv" ] || fail "empty result TSV"
cmp -s "${ROOT}/a.tsv" "${ROOT}/b.tsv" || fail "result TSV differs between daemons"
echo "   ok: identical summaries, dedup=cache on resubmit"

echo "== kill -9 with a 10-job queue, restart, recovery =="
# Accept-only daemon (no workers): all ten jobs stay queued in the journal.
boot c --workers 0 --max-queue 16
IDS=()
for i in $(seq 0 9); do
    WL=$(echo db tpcw japp web | cut -d' ' -f$((i % 4 + 1)))
    J=$(submit "{\"v\":1,\"runs\":[{\"config\":\"single_core\",\"workload\":\"${WL}\",\"prefetcher\":\"nnl:$((i / 4 + 1))\",\"policy\":\"install_both\",\"warm\":50000,\"measure\":100000}]}")
    ID=$(echo "${J}" | jq -r .id)
    [ "${ID}" != "null" ] || fail "submit ${i} rejected: ${J}"
    IDS+=("${ID}")
done
DEPTH=$(curl -s "http://${ADDR}/v1/stats" | jq -r .queue_depth)
[ "${DEPTH}" = "10" ] || fail "expected queue_depth=10, got ${DEPTH}"
kill -9 "${DAEMON_PID}"
wait "${DAEMON_PID}" 2>/dev/null || true
DAEMON_PID=""

# Restart over the same journal, now with workers: every job must finish.
boot c --workers 4
RECOVERED=$(curl -s "http://${ADDR}/v1/stats" | jq -r .recovered)
[ "${RECOVERED}" = "10" ] || fail "expected recovered=10, got ${RECOVERED}"
for ID in "${IDS[@]}"; do
    wait_done "${ID}"
done
stop
echo "   ok: all 10 jobs recovered and finished after kill -9"

echo "== queue overflow answers 429 =="
boot d --workers 0 --max-queue 2
submit "${SPEC}" >/dev/null
OVERFLOW_SPEC='{"v":1,"runs":[{"config":"single_core","workload":"web","prefetcher":"none","policy":"install_both","warm":50000,"measure":100000}]}'
submit "${OVERFLOW_SPEC}" >/dev/null
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -H 'X-Client-Id: smoke2' \
    -d '{"v":1,"runs":[{"config":"single_core","workload":"japp","prefetcher":"none","policy":"install_both","warm":50000,"measure":100000}]}' \
    "http://${ADDR}/v1/jobs")
[ "${CODE}" = "429" ] || fail "expected 429 on overflow, got ${CODE}"
stop
echo "   ok: 429 on a full queue"

echo "serve_smoke: PASS"
