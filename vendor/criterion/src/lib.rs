//! A small, dependency-free, offline stand-in for the [`criterion`] crate.
//!
//! The workspace must build and test without crates.io access, so
//! `criterion` resolves to this local shim (see the root `Cargo.toml`). It
//! supports the API surface the `ipsim-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros —
//! and reports a plain mean wall-clock time per iteration on stdout.
//! There are no statistical analyses, baselines, or HTML reports; for
//! those, run the benches on a machine with the real crate available.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared per-iteration workload (accepted, not used in reports).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(name, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own timing loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; not used in reports.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    if per_iter >= 1_000_000.0 {
        println!("bench {label}: {:.3} ms/iter", per_iter / 1_000_000.0);
    } else if per_iter >= 1_000.0 {
        println!("bench {label}: {:.3} µs/iter", per_iter / 1_000.0);
    } else {
        println!("bench {label}: {per_iter:.1} ns/iter");
    }
}

/// Passed to each benchmark closure; times the inner routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine`, batching iterations until the measurement window
    /// is filled.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and a first estimate of the per-call cost.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        // Batch enough calls that per-batch timing overhead is negligible,
        // without overshooting the window on slow routines.
        let batch =
            (Duration::from_millis(5).as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let deadline = Instant::now() + TARGET;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .throughput(Throughput::Elements(1))
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
