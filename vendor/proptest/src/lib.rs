//! A small, dependency-free, offline stand-in for the [`proptest`] crate.
//!
//! The workspace's property tests were written against upstream proptest,
//! but this repository must build and test in air-gapped environments with
//! no crates.io access, so the workspace resolves `proptest` to this local
//! shim (see the root `Cargo.toml`). It implements exactly the API subset
//! the tests use:
//!
//! * the [`proptest!`] macro with `name in strategy` arguments and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * integer / float range strategies, tuples, [`Just`], [`any`],
//!   [`prop_oneof!`] and `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic per-case seed instead of a minimised input.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   a fixed global seed, so failures reproduce exactly across runs and
//!   machines; there is no persistence (`.proptest-regressions` files are
//!   ignored).
//! * Unsupported upstream features (weighted `prop_oneof!` arms,
//!   `prop_compose!`, filters, recursive strategies) are simply absent, so
//!   accidental use fails at compile time rather than behaving differently.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

/// Random number generation for test cases: SplitMix64, seeded
/// deterministically per case.
pub mod test_runner {
    /// Per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded with `seed`.
        pub fn seeded(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; the shim picks a lighter default
            // because every perf-sensitive test in this workspace sets an
            // explicit count anyway.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (created by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property: generates `config.cases` cases and panics on
    /// the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    /// Fixed base seed; per-case seeds derive from it, so any failure
    /// reproduces bit-identically on re-run.
    const BASE_SEED: u64 = 0x1951_1A5E_EDC0_FFEE;

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a deterministic RNG;
        /// panics with a reproducible report on the first `Err`.
        pub fn run_named(
            &mut self,
            name: &str,
            mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        ) {
            let cases = self.config.cases.max(1);
            for i in 0..cases {
                let seed = TestRng::seeded(BASE_SEED ^ u64::from(i)).next_u64();
                let mut rng = TestRng::seeded(seed);
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "proptest-shim: property `{name}` failed at case {i}/{cases} \
                         (case seed {seed:#018x}, deterministic — rerun reproduces): {e}"
                    );
                }
            }
        }
    }
}

/// Strategies: value generators composed like upstream proptest's.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy just
    /// samples a value from an RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the [`prop_oneof!`] macro).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let off = (rng.next_u64() as u128) % span;
                    self.start + off as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).generate(rng) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` support for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specification for [`vec`]: an exact `usize` or a
        /// half-open `Range<usize>`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy yielding `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new($cfg);
                __runner.run_named(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*), __l, __r
                );
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::seeded(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::seeded(11);
        for _ in 0..500 {
            let v = prop::collection::vec(0u64..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = prop::collection::vec(0u64..10, 9usize).generate(&mut rng);
            assert_eq!(exact.len(), 9);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::seeded(13);
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..12).prop_map(|x| x)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself works end to end.
        #[test]
        fn macro_end_to_end(x in 0u64..100, pair in (0u64..4, any::<bool>())) {
            prop_assert!(x < 100);
            let (a, b) = pair;
            prop_assert!(a < 4);
            prop_assert_eq!(b as u64 <= 1, true);
        }
    }
}
